//! The serving tier: [`WebDbServer`] (or any [`DataSource`]) behind a real
//! request/response boundary.
//!
//! The paper's cost model (Definition 2.3) bills communication rounds
//! against a *remote* query interface, but an in-process `DataSource` call
//! cannot exhibit the service phenomena that make rounds expensive: queueing,
//! load shedding, deadlines, tail latency. [`SourceService`] supplies that
//! missing seam. It owns an inner source, a bounded job queue, and a pool of
//! worker threads; [`Connection`] is the client half — itself a
//! [`DataSource`], so every policy, engine, and fleet above the seam runs
//! unmodified against either transport:
//!
//! ```text
//!  Crawler ──respond(SourceRequest)──▶ Connection ──try_send──▶ [bounded queue]
//!     ▲                                   │   ▲                      │
//!     │                                   │   └──reply channel──  worker × W
//!     │                            queue full?                       │
//!     └── Err(Rejected) ◀── shed ─────────┘            respond() on inner source,
//!                                                      encode page → wire frame
//! ```
//!
//! Contract, in terms of the paper's cost model:
//!
//! * **Admission control.** The queue is bounded ([`ServeConfig::queue_depth`]).
//!   A full queue sheds the request at admission — the client gets
//!   [`CrawlError::Rejected`] and the service bills the round itself (the
//!   request reached the service; Definition 2.3 counts requests, not
//!   outcomes). The queue can never grow unboundedly.
//! * **Deadlines & cancellation.** A queued request whose deadline passes or
//!   whose [`CancelToken`] fires is cancelled at dequeue — billed, answered
//!   [`CrawlError::Cancelled`], never executed.
//! * **Conservation.** Every request offered to the service is billed exactly
//!   once: executed ones by the inner source's own round counter, shed and
//!   cancelled ones by the service's counters. [`Connection::rounds_used`]
//!   is the sum, so `report.rounds == source.rounds_used()` holds across
//!   transports.
//! * **Observability.** The service runs its own [`EventBus`], emitting
//!   [`CrawlEvent::RequestEnqueued`] / [`CrawlEvent::RequestShed`] /
//!   [`CrawlEvent::RequestCancelled`] / [`CrawlEvent::RequestCompleted`];
//!   [`MetricsRegistry`](crate::metrics::MetricsRegistry) folds them into a
//!   [`ServiceReport`] (queue depth, shed rate, p50/p95/p99 latency), and
//!   [`crate::metrics::replay_service_report`] reproduces it from a recorded
//!   stream. Service events never enter the *crawl* bus — crawl reports stay
//!   bit-identical across transports, which is what the parity suite checks.
//!
//! Responses cross the boundary as frames: the worker visits the inner
//! source's page zero-copy, re-encodes it with
//! [`crate::extract::page_ref_to_wire`], and the client re-parses with
//! [`crate::extract::parse_page_ref`] — the observable content is identical
//! to the in-process path, only the transport differs.

use crate::events::{CrawlEvent, EventBus, EventSink};
use crate::extract::{page_ref_to_wire, parse_page_ref, ExtractedPageRef};
use crate::source::{
    CancelToken, CrawlError, DataSource, PageMeta, ProberMode, ServiceMeta, SourceRequest,
    SourceResponse,
};
use crate::ConfigError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use dwc_server::{InterfaceSpec, Query};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Serving-tier counters and tail-latency summary, folded by
/// [`MetricsRegistry`](crate::metrics::MetricsRegistry) from the service's
/// event stream. All-zero when no request ever crossed a service boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceReport {
    /// Requests admitted into the queue.
    pub enqueued: u64,
    /// Requests fully processed by a worker (successes and inner failures).
    pub completed: u64,
    /// Requests refused at admission because the queue was full.
    pub shed: u64,
    /// Requests cancelled at dequeue (deadline expired or token fired).
    pub cancelled: u64,
    /// Largest queue depth observed at any admission.
    pub max_queue_depth: u32,
    /// Mean queue depth observed at admission.
    pub mean_queue_depth: f64,
    /// Median request latency (admission → reply), microseconds.
    pub p50_latency_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Largest request latency observed, microseconds.
    pub max_latency_us: u64,
}

impl ServiceReport {
    /// Requests offered to the service: admitted plus shed at the door.
    pub fn offered(&self) -> u64 {
        self.enqueued + self.shed
    }

    /// Fraction of offered requests shed at admission (0.0 when idle).
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }
}

/// Per-request service latency model, sampled deterministically from the
/// config seed and the request's admission sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// No modeled latency: the worker answers as fast as it can.
    #[default]
    None,
    /// Every request costs the same fixed service time.
    Fixed(Duration),
    /// Service time drawn uniformly from `[min, max]`.
    Uniform {
        /// Lower bound of the service time.
        min: Duration,
        /// Upper bound of the service time.
        max: Duration,
    },
}

/// `splitmix64` — the same tiny generator the fault planner uses; good
/// enough to decorrelate per-request service times from a single seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LatencyModel {
    /// The modeled service time for the `seq`-th admitted request.
    fn sample(&self, seed: u64, seq: u64) -> Duration {
        match *self {
            LatencyModel::None => Duration::ZERO,
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                let span = hi - lo;
                if span.is_zero() {
                    return lo;
                }
                let frac = (splitmix64(seed ^ seq) >> 11) as f64 / (1u64 << 53) as f64;
                lo + span.mul_f64(frac)
            }
        }
    }
}

/// Serving-tier knobs, validated together by [`ServeConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Bound on the request queue; admission sheds beyond it.
    pub queue_depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Per-request service-time distribution.
    pub latency: LatencyModel,
    /// Modeled decode cost billed per record in the response page.
    pub decode_per_record: Duration,
    /// Deadline applied to requests whose envelope carries none.
    pub default_deadline: Option<Duration>,
    /// Seed for the latency distribution.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 32,
            workers: 1,
            latency: LatencyModel::None,
            decode_per_record: Duration::ZERO,
            default_deadline: None,
            seed: 0,
        }
    }
}

impl ServeConfig {
    /// A builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: ServeConfig::default() }
    }
}

/// Builder for [`ServeConfig`]; `build()` validates every knob together and
/// returns a typed [`ConfigError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the queue bound. Must be positive.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Sets the worker-thread count. Must be positive.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-request service-time distribution.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Sets the modeled per-record decode cost.
    pub fn decode_per_record(mut self, cost: Duration) -> Self {
        self.config.decode_per_record = cost;
        self
    }

    /// Sets the deadline applied to requests that carry none. Must be
    /// positive.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = Some(deadline);
        self
    }

    /// Sets the latency-distribution seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates all knobs together.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let c = self.config;
        if c.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if c.workers == 0 {
            return Err(ConfigError::ZeroBudget("workers"));
        }
        if c.default_deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        Ok(c)
    }
}

/// The frame a worker ships back on success: the page re-encoded into the
/// XML wire format plus the service-level facts that ride alongside it.
struct ReplyFrame {
    wire: String,
    served_from_cache: bool,
    latency_us: u64,
}

/// One queued request: the owned envelope plus the rendezvous reply channel.
struct Job {
    query: Query,
    page_index: usize,
    prober: ProberMode,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    enqueued_at: Instant,
    seq: u64,
    reply: Sender<Result<ReplyFrame, CrawlError>>,
}

/// State shared by the service and every connection: the service-side event
/// bus and the billing counters for requests that never reach the inner
/// source.
struct ServiceShared {
    bus: Mutex<EventBus>,
    shed: AtomicU64,
    cancelled: AtomicU64,
    seq: AtomicU64,
}

impl ServiceShared {
    fn emit(&self, event: CrawlEvent) {
        self.bus.lock().expect("service bus poisoned").emit(event);
    }
}

/// A [`DataSource`] served over a bounded queue by worker threads. Create
/// with [`SourceService::start`], obtain clients with
/// [`connect`](SourceService::connect) /
/// [`connect_pool`](SourceService::connect_pool).
pub struct SourceService<S> {
    inner: Arc<S>,
    tx: Sender<Job>,
    shared: Arc<ServiceShared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
}

impl<S: DataSource + Send + Sync + 'static> SourceService<S> {
    /// Spawns the worker pool and starts serving `inner`.
    pub fn start(inner: Arc<S>, config: ServeConfig) -> Self {
        let (tx, rx) = bounded::<Job>(config.queue_depth);
        let shared = Arc::new(ServiceShared {
            bus: Mutex::new(EventBus::new()),
            shed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(inner, rx, shared, config))
            })
            .collect();
        SourceService { inner, tx, shared, config, workers }
    }

    /// A new client connection. Connections are cheap (a channel handle and
    /// two `Arc`s) and may be cloned or created per worker.
    pub fn connect(&self) -> Connection<S> {
        Connection {
            inner: Arc::clone(&self.inner),
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            default_deadline: self.config.default_deadline,
        }
    }

    /// A round-robin pool of `n` connections. `n` must be positive.
    pub fn connect_pool(&self, n: usize) -> Result<ClientPool<S>, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroConnections);
        }
        Ok(ClientPool {
            connections: (0..n).map(|_| self.connect()).collect(),
            cursor: AtomicUsize::new(0),
        })
    }

    /// Attaches a streaming sink to the service-side event bus. Attach
    /// before traffic to capture the full stream.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        self.shared.bus.lock().expect("service bus poisoned").add_sink(sink);
    }

    /// The serving-tier report folded from the service's own event stream.
    pub fn service_report(&self) -> ServiceReport {
        self.shared.bus.lock().expect("service bus poisoned").metrics().service_report()
    }

    /// Drops the service's queue handle, joins the workers once every
    /// outstanding [`Connection`] is gone, and returns the final report.
    /// Call after dropping clients; with live connections this blocks until
    /// they disconnect.
    pub fn shutdown(self) -> ServiceReport {
        let SourceService { tx, shared, workers, .. } = self;
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        let report = shared.bus.lock().expect("service bus poisoned").metrics().service_report();
        report
    }
}

fn worker_loop<S: DataSource>(
    inner: Arc<S>,
    rx: Receiver<Job>,
    shared: Arc<ServiceShared>,
    config: ServeConfig,
) {
    while let Ok(job) = rx.recv() {
        let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
        let fired = job.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
        if expired || fired {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.emit(CrawlEvent::RequestCancelled);
            let _ = job.reply.try_send(Err(CrawlError::Cancelled));
            continue;
        }
        let modeled = config.latency.sample(config.seed, job.seq);
        if !modeled.is_zero() {
            thread::sleep(modeled);
        }
        let request = SourceRequest {
            query: &job.query,
            page_index: job.page_index,
            prober: job.prober,
            deadline: job.deadline,
            cancel: job.cancel.as_ref(),
        };
        let mut wire = None;
        let mut records = 0u32;
        let outcome = inner.respond(&request, &mut |page| {
            records = page.records.len() as u32;
            wire = Some(page_ref_to_wire(page));
        });
        if !config.decode_per_record.is_zero() && records > 0 {
            thread::sleep(config.decode_per_record * records);
        }
        let latency_us = job.enqueued_at.elapsed().as_micros() as u64;
        // Completed means "a worker finished processing it" — inner failures
        // included, so enqueued == completed + cancelled once drained.
        shared.emit(CrawlEvent::RequestCompleted { latency_us });
        let frame = outcome.map(|resp| ReplyFrame {
            wire: wire.expect("respond visits exactly once on success"),
            served_from_cache: resp.meta.served_from_cache,
            latency_us,
        });
        let _ = job.reply.try_send(frame);
    }
}

/// The client half of the protocol transport: a [`DataSource`] that frames
/// each request into the service's bounded queue and re-parses the reply.
///
/// Billing: `rounds_used()` is the inner source's counter plus the service's
/// shed and cancelled counters — every request offered to the service costs
/// one round no matter how it ends.
pub struct Connection<S> {
    inner: Arc<S>,
    tx: Sender<Job>,
    shared: Arc<ServiceShared>,
    default_deadline: Option<Duration>,
}

impl<S> std::fmt::Debug for Connection<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("queued", &self.tx.len())
            .field("default_deadline", &self.default_deadline)
            .finish()
    }
}

impl<S> Clone for Connection<S> {
    fn clone(&self) -> Self {
        Connection {
            inner: Arc::clone(&self.inner),
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            default_deadline: self.default_deadline,
        }
    }
}

impl<S: DataSource> DataSource for Connection<S> {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let (reply_tx, reply_rx) = bounded(1);
        let deadline =
            request.deadline.or_else(|| self.default_deadline.map(|d| Instant::now() + d));
        let job = Job {
            query: request.query.clone(),
            page_index: request.page_index,
            prober: request.prober,
            deadline,
            cancel: request.cancel.cloned(),
            enqueued_at: Instant::now(),
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            reply: reply_tx,
        };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // Shed at admission: the request reached the service, so the
                // service bills the round itself.
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.emit(CrawlEvent::RequestShed);
                return Err(CrawlError::Rejected);
            }
            Err(TrySendError::Disconnected(_)) => return Err(CrawlError::Cancelled),
        }
        let depth = self.tx.len() as u32;
        self.shared.emit(CrawlEvent::RequestEnqueued { depth });
        let frame = reply_rx.recv().map_err(|_| CrawlError::Cancelled)??;
        let page = parse_page_ref(&frame.wire).map_err(|_| CrawlError::CorruptPage)?;
        let meta = PageMeta {
            page_index: page.page_index,
            total_matches: page.total_matches,
            has_more: page.has_more,
            served_from_cache: frame.served_from_cache,
        };
        visit(&page);
        Ok(SourceResponse {
            meta,
            service: Some(ServiceMeta { queue_depth: depth, latency_us: frame.latency_us }),
        })
    }

    fn interface(&self) -> &InterfaceSpec {
        self.inner.interface()
    }

    fn rounds_used(&self) -> u64 {
        self.inner.rounds_used()
            + self.shared.shed.load(Ordering::Relaxed)
            + self.shared.cancelled.load(Ordering::Relaxed)
    }
}

/// A round-robin pool of [`Connection`]s — the fleet-facing client when N
/// logical connections share one service. Also a [`DataSource`]; the round
/// counters are shared, so billing is global across the pool.
pub struct ClientPool<S> {
    connections: Vec<Connection<S>>,
    cursor: AtomicUsize,
}

impl<S> std::fmt::Debug for ClientPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool").field("connections", &self.connections.len()).finish()
    }
}

impl<S> ClientPool<S> {
    /// Number of connections in the pool.
    pub fn connections(&self) -> usize {
        self.connections.len()
    }
}

impl<S: DataSource> DataSource for ClientPool<S> {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let next = self.cursor.fetch_add(1, Ordering::Relaxed) % self.connections.len();
        self.connections[next].respond(request, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        self.connections[0].interface()
    }

    fn rounds_used(&self) -> u64 {
        // Counters are shared service-wide; any connection reports them all.
        self.connections[0].rounds_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;
    use crate::metrics::replay_service_report;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;
    use dwc_server::{InterfaceSpec, WebDbServer};

    fn server() -> WebDbServer {
        let table = figure1_table();
        let spec = InterfaceSpec::permissive(table.schema(), 2);
        WebDbServer::new(table, spec)
    }

    fn a2(server: &WebDbServer) -> Query {
        Query::Value(server.table().interner().get(AttrId(0), "a2").unwrap())
    }

    #[test]
    fn builder_validates_all_knobs_together() {
        assert_eq!(
            ServeConfig::builder().queue_depth(0).build().unwrap_err(),
            ConfigError::ZeroQueueDepth
        );
        assert_eq!(
            ServeConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroBudget("workers")
        );
        assert_eq!(
            ServeConfig::builder().default_deadline(Duration::ZERO).build().unwrap_err(),
            ConfigError::ZeroDeadline
        );
        let ok = ServeConfig::builder()
            .queue_depth(4)
            .workers(2)
            .latency(LatencyModel::Fixed(Duration::from_micros(10)))
            .default_deadline(Duration::from_millis(100))
            .build()
            .unwrap();
        assert_eq!(ok.queue_depth, 4);
        assert_eq!(ok.workers, 2);
    }

    #[test]
    fn zero_connection_pools_are_rejected() {
        let service = SourceService::start(Arc::new(server()), ServeConfig::default());
        assert_eq!(service.connect_pool(0).unwrap_err(), ConfigError::ZeroConnections);
        assert_eq!(service.connect_pool(3).unwrap().connections(), 3);
    }

    #[test]
    fn protocol_response_matches_in_process_response() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let mut direct = None;
        let direct_meta = inner
            .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |page| {
                direct = Some(page.to_owned_page());
            })
            .unwrap();
        assert!(direct_meta.service.is_none());

        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let conn = service.connect();
        let mut served = None;
        let response = conn
            .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |page| {
                served = Some(page.to_owned_page());
            })
            .unwrap();
        assert_eq!(served, direct);
        assert_eq!(response.meta.page_index, direct_meta.meta.page_index);
        assert_eq!(response.meta.total_matches, direct_meta.meta.total_matches);
        assert_eq!(response.meta.has_more, direct_meta.meta.has_more);
        let service_meta = response.service.expect("protocol responses carry service meta");
        assert!(service_meta.latency_us < 10_000_000);

        // One executed request, zero shed/cancelled: billing matches the
        // inner counter exactly (the direct probe billed one round too).
        assert_eq!(conn.rounds_used(), inner.rounds_used());
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.enqueued, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.shed, 0);
        assert_eq!(report.shed_rate(), 0.0);
    }

    #[test]
    fn full_queue_sheds_at_admission_and_bills_the_round() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let config = ServeConfig::builder()
            .queue_depth(1)
            .workers(1)
            .latency(LatencyModel::Fixed(Duration::from_millis(150)))
            .build()
            .unwrap();
        let service = SourceService::start(Arc::clone(&inner), config);

        // Stagger two slow requests so neither collides at admission: the
        // first is executing (~150ms) by the time the second is queued.
        let spawn_one = |service: &SourceService<WebDbServer>| {
            let conn = service.connect();
            let query = query.clone();
            thread::spawn(move || {
                conn.respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| {})
            })
        };
        let first = spawn_one(&service);
        thread::sleep(Duration::from_millis(50));
        let second = spawn_one(&service);
        thread::sleep(Duration::from_millis(50));

        // One executing + one queued: the single-slot queue is full, so the
        // probe must be shed at the door, immediately, without queueing.
        let conn = service.connect();
        let probe_started = Instant::now();
        let err = conn
            .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| {})
            .unwrap_err();
        assert_eq!(err, CrawlError::Rejected);
        assert!(err.is_transient(), "rejection must be retryable");
        assert!(
            probe_started.elapsed() < Duration::from_millis(100),
            "shedding happens at admission, not after queueing"
        );

        first.join().unwrap().unwrap();
        second.join().unwrap().unwrap();
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.shed, 1);
        assert!(report.shed_rate() > 0.0);
        assert_eq!(report.enqueued, 2);
        assert_eq!(report.completed, 2);
        // Conservation: executed requests billed by the inner source, shed
        // ones by the service's own counter.
        assert_eq!(inner.rounds_used(), 2);
        assert_eq!(inner.rounds_used() + report.shed, 3);
    }

    #[test]
    fn expired_deadline_cancels_at_dequeue_and_bills_the_round() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let conn = service.connect();

        let request = SourceRequest::new(&query, 0, ProberMode::Wire).with_deadline(Instant::now());
        let err = conn.respond(&request, &mut |_| {}).unwrap_err();
        assert_eq!(err, CrawlError::Cancelled);
        assert_eq!(conn.rounds_used(), inner.rounds_used() + 1);

        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.enqueued, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn fired_token_cancels_queued_requests() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let conn = service.connect();

        let token = CancelToken::new();
        token.cancel();
        let request = SourceRequest::new(&query, 0, ProberMode::Wire).with_cancel(&token);
        assert_eq!(conn.respond(&request, &mut |_| {}).unwrap_err(), CrawlError::Cancelled);

        drop(conn);
        assert_eq!(service.shutdown().cancelled, 1);
    }

    #[test]
    fn pool_round_robins_and_shares_billing() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let pool = service.connect_pool(3).unwrap();
        for _ in 0..6 {
            pool.respond(&SourceRequest::new(&query, 0, ProberMode::InProcess), &mut |_| {})
                .unwrap();
        }
        assert_eq!(pool.rounds_used(), 6);
        assert_eq!(pool.rounds_used(), inner.rounds_used());
        drop(pool);
        assert_eq!(service.shutdown().completed, 6);
    }

    #[test]
    fn service_report_replays_from_the_recorded_stream() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let sink = MemorySink::new();
        service.add_sink(Box::new(sink.clone()));
        let conn = service.connect();
        for page in 0..2 {
            conn.respond(&SourceRequest::new(&query, page, ProberMode::Wire), &mut |_| {}).unwrap();
        }
        let expired = SourceRequest::new(&query, 0, ProberMode::Wire).with_deadline(Instant::now());
        conn.respond(&expired, &mut |_| {}).unwrap_err();
        drop(conn);
        let live = service.shutdown();
        assert_eq!(replay_service_report(&sink.collected()), live);
        assert_eq!(live.enqueued, 3);
        assert_eq!(live.completed, 2);
        assert_eq!(live.cancelled, 1);
    }

    #[test]
    fn uniform_latency_samples_are_seeded_and_bounded() {
        let model = LatencyModel::Uniform {
            min: Duration::from_micros(100),
            max: Duration::from_micros(900),
        };
        for seq in 0..64 {
            let d = model.sample(7, seq);
            assert!(d >= Duration::from_micros(100) && d <= Duration::from_micros(900));
            assert_eq!(d, model.sample(7, seq), "same seed+seq must resample identically");
        }
        assert_eq!(LatencyModel::None.sample(1, 2), Duration::ZERO);
        assert_eq!(
            LatencyModel::Fixed(Duration::from_millis(3)).sample(1, 2),
            Duration::from_millis(3)
        );
    }
}
