//! The serving tier: [`WebDbServer`] (or any [`DataSource`]) behind a real
//! request/response boundary.
//!
//! The paper's cost model (Definition 2.3) bills communication rounds
//! against a *remote* query interface, but an in-process `DataSource` call
//! cannot exhibit the service phenomena that make rounds expensive: queueing,
//! load shedding, deadlines, tail latency. [`SourceService`] supplies that
//! missing seam. It owns an inner source, a bounded job queue, and a pool of
//! worker threads; [`Connection`] is the client half — itself a
//! [`DataSource`], so every policy, engine, and fleet above the seam runs
//! unmodified against either transport:
//!
//! ```text
//!  Crawler ──respond(SourceRequest)──▶ Connection ──try_send──▶ [bounded queue]
//!     ▲                                   │   ▲                      │
//!     │                                   │   └──reply channel──  worker × W
//!     │                            queue full?                       │
//!     └── Err(Rejected) ◀── shed ─────────┘            respond() on inner source,
//!                                                      encode page → wire frame
//! ```
//!
//! Contract, in terms of the paper's cost model:
//!
//! * **Admission control.** The queue is bounded ([`ServeConfig::queue_depth`]).
//!   A full queue sheds the request at admission — the client gets
//!   [`CrawlError::Rejected`] and the service bills the round itself (the
//!   request reached the service; Definition 2.3 counts requests, not
//!   outcomes). The queue can never grow unboundedly.
//! * **Deadlines & cancellation.** A queued request whose deadline passes or
//!   whose [`CancelToken`] fires is cancelled at dequeue — billed, answered
//!   [`CrawlError::Cancelled`], never executed.
//! * **Exactly-once under a lossy wire.** Every logical request carries an
//!   idempotent request id. The service keeps a bounded dedup window: the
//!   first transmission of an id executes, every later transmission of the
//!   same id — a retransmit after a lost frame, a chaos duplicate, a hedge —
//!   is billed as a fresh round but served the cached outcome, never
//!   re-executed. This is what keeps crawl reports bit-identical between a
//!   fault-free wire and a chaos wire ([`crate::chaos::ChaosPlan`]): faults
//!   are absorbed entirely below `respond()`.
//! * **Crash recovery.** A worker killed *before* executing its request
//!   ([`crate::chaos::ChaosKind::Crash`] on the request frame) bills the
//!   round cancelled and the retransmit re-executes; killed *after*
//!   executing, the outcome survives in the dedup window and the retransmit
//!   is served from it. Either way the queue and the billing counters
//!   survive the restart, so `ServiceReport` replay parity still holds.
//! * **Conservation.** Every request that reached the service is billed
//!   exactly once: `rounds_used = executed + shed + cancelled +
//!   retransmitted`. Request frames the wire ate before admission bill
//!   nothing.
//! * **Hedging.** [`ClientPool::with_hedging`] races a duplicate of any
//!   request whose reply exceeds a latency threshold on the next connection,
//!   with the same request id — the dedup window makes the race safe — and
//!   cancels the loser. This bounds p99 under stall injection at a small
//!   extra round cost (BENCH-7 gates both sides).
//! * **Circuit breaking.** Every pool carries a [`CircuitBreaker`] per
//!   connection: streaks of [`CrawlError::Rejected`] /
//!   [`CrawlError::Cancelled`] trip a connection out of rotation, a cooled
//!   breaker probes half-open, and every transition lands on the service bus
//!   as a [`CrawlEvent::BreakerTransition`] so trips are visible in the
//!   [`ServiceReport`].
//! * **Observability.** The service runs its own [`EventBus`], emitting
//!   [`CrawlEvent::RequestEnqueued`] / [`CrawlEvent::RequestShed`] /
//!   [`CrawlEvent::RequestCancelled`] / [`CrawlEvent::RequestCompleted`]
//!   plus the chaos-era events [`CrawlEvent::FrameDropped`] /
//!   [`CrawlEvent::FrameRetransmitted`] / [`CrawlEvent::Hedged`] /
//!   [`CrawlEvent::ServiceRestarted`];
//!   [`MetricsRegistry`](crate::metrics::MetricsRegistry) folds them into a
//!   [`ServiceReport`], and [`crate::metrics::replay_service_report`]
//!   reproduces it from a recorded stream. Service events never enter the
//!   *crawl* bus — crawl reports stay bit-identical across transports,
//!   which is what the parity and chaos suites check.
//!
//! Responses cross the boundary as frames: the worker visits the inner
//! source's page zero-copy, re-encodes it with
//! [`crate::extract::page_ref_to_wire`], stamps an FNV-1a checksum, and the
//! client verifies and re-parses with [`crate::extract::parse_page_ref`] —
//! a checksum mismatch means the wire truncated the frame in transit
//! (retransmit; the intact frame is served from the dedup window), while a
//! parse failure on an intact frame means the source itself served garbage
//! (surfaced as [`CrawlError::CorruptPage`], exactly as in-process).

use crate::chaos::{ChaosKind, ChaosState};
use crate::events::{BreakerPhase, CrawlEvent, EventBus, EventSink};
use crate::extract::{page_ref_to_wire, parse_page_ref, ExtractedPage, ExtractedPageRef};
use crate::fault::splitmix64;
use crate::health::{BreakerConfig, CircuitBreaker};
use crate::source::{
    CancelToken, CrawlError, DataSource, PageMeta, ProberMode, ServiceMeta, SourceRequest,
    SourceResponse,
};
use crate::tenant::{validate_tenants, Tenant, TenantId, TokenBucket};
use crate::ConfigError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use dwc_server::{InterfaceSpec, Query};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Serving-tier counters and tail-latency summary, folded by
/// [`MetricsRegistry`](crate::metrics::MetricsRegistry) from the service's
/// event stream. All-zero when no request ever crossed a service boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceReport {
    /// Requests admitted into the queue.
    pub enqueued: u64,
    /// Requests fully processed by a worker (successes and inner failures).
    pub completed: u64,
    /// Requests refused at admission because the queue was full.
    pub shed: u64,
    /// Requests cancelled at dequeue (deadline expired or token fired).
    pub cancelled: u64,
    /// Largest queue depth observed at any admission.
    pub max_queue_depth: u32,
    /// Mean queue depth observed at admission.
    pub mean_queue_depth: f64,
    /// Median request latency (admission → reply), microseconds.
    pub p50_latency_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_latency_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: u64,
    /// Largest request latency observed, microseconds.
    pub max_latency_us: u64,
    /// Wire frames eaten by the chaos layer (dropped, truncated, or lost
    /// with their link). Dropped request frames bill nothing.
    pub frames_dropped: u64,
    /// Retransmitted or duplicated request frames served from the dedup
    /// window: billed as new rounds, never executed twice.
    pub retransmitted: u64,
    /// Requests the client pool hedged past the latency threshold.
    pub hedged: u64,
    /// Service worker crash-and-restart cycles survived.
    pub restarts: u64,
    /// Connection circuit-breaker trips (entries into `Open`).
    pub breaker_trips: u64,
    /// Connection circuit-breaker recoveries (clean half-open probes).
    pub breaker_recoveries: u64,
}

impl ServiceReport {
    /// Requests offered to the service: admitted plus shed at the door.
    pub fn offered(&self) -> u64 {
        self.enqueued + self.shed
    }

    /// Fraction of offered requests shed at admission (0.0 when idle).
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }
}

/// Per-request service latency model, sampled deterministically from the
/// config seed and the request's admission sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// No modeled latency: the worker answers as fast as it can.
    #[default]
    None,
    /// Every request costs the same fixed service time.
    Fixed(Duration),
    /// Service time drawn uniformly from `[min, max]`.
    Uniform {
        /// Lower bound of the service time.
        min: Duration,
        /// Upper bound of the service time.
        max: Duration,
    },
}

impl LatencyModel {
    /// The modeled service time for the `seq`-th admitted request.
    fn sample(&self, seed: u64, seq: u64) -> Duration {
        match *self {
            LatencyModel::None => Duration::ZERO,
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                let span = hi - lo;
                if span.is_zero() {
                    return lo;
                }
                let frac = (splitmix64(seed ^ seq) >> 11) as f64 / (1u64 << 53) as f64;
                lo + span.mul_f64(frac)
            }
        }
    }
}

/// Serving-tier knobs, validated together by [`ServeConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bound on the request queue; admission sheds beyond it.
    pub queue_depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Per-request service-time distribution.
    pub latency: LatencyModel,
    /// Modeled decode cost billed per record in the response page.
    pub decode_per_record: Duration,
    /// Deadline applied to requests whose envelope carries none.
    pub default_deadline: Option<Duration>,
    /// Seed for the latency distribution.
    pub seed: u64,
    /// Tenant registry for per-tenant admission control. Tenants with a
    /// [`crate::tenant::RateLimit`] get a token bucket at the protocol seam
    /// ([`SourceService::connect_for`]); an empty registry leaves the
    /// service tenant-blind.
    pub tenants: Vec<Tenant>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 32,
            workers: 1,
            latency: LatencyModel::None,
            decode_per_record: Duration::ZERO,
            default_deadline: None,
            seed: 0,
            tenants: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// A builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: ServeConfig::default() }
    }
}

/// Builder for [`ServeConfig`]; `build()` validates every knob together and
/// returns a typed [`ConfigError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the queue bound. Must be positive.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Sets the worker-thread count. Must be positive.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-request service-time distribution.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Sets the modeled per-record decode cost.
    pub fn decode_per_record(mut self, cost: Duration) -> Self {
        self.config.decode_per_record = cost;
        self
    }

    /// Sets the deadline applied to requests that carry none. Must be
    /// positive.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = Some(deadline);
        self
    }

    /// Sets the latency-distribution seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the tenant registry for per-tenant admission control.
    pub fn tenants(mut self, tenants: Vec<Tenant>) -> Self {
        self.config.tenants = tenants;
        self
    }

    /// Validates all knobs together.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let c = self.config;
        if c.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if c.workers == 0 {
            return Err(ConfigError::ZeroBudget("workers"));
        }
        if c.default_deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        validate_tenants(&c.tenants)?;
        Ok(c)
    }
}

/// FNV-1a over the frame body. Lets the client tell transit corruption
/// (checksum mismatch → retransmit) from a source that genuinely served a
/// corrupt page (intact checksum, unparseable body →
/// [`CrawlError::CorruptPage`]).
fn wire_checksum(wire: &str) -> u64 {
    wire.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

/// Truncates a wire frame at roughly two thirds of its length on a char
/// boundary — the same mutilation [`crate::fault::FaultPlanSource`] applies,
/// here modeling the *wire* (not the source) garbling the frame.
fn truncate_wire(wire: &mut String) {
    let mut cut = (wire.len() * 2) / 3;
    while cut > 0 && !wire.is_char_boundary(cut) {
        cut -= 1;
    }
    wire.truncate(cut);
}

/// The frame a worker ships back on success: the page re-encoded into the
/// XML wire format plus the service-level facts that ride alongside it.
#[derive(Clone)]
struct ReplyFrame {
    wire: String,
    served_from_cache: bool,
    latency_us: u64,
    /// FNV-1a of `wire` as it left the worker; survives chaos truncation so
    /// the client can detect it.
    checksum: u64,
}

/// What travels on a reply channel.
type Reply = Result<ReplyFrame, CrawlError>;

/// Chaos directives attached to one queued job, all decided at submit time
/// so a schedule is a pure function of the wire-frame counter.
#[derive(Debug, Clone, Copy, Default)]
struct JobChaos {
    /// Request-frame stall/reorder: the wire delivered this frame late. The
    /// worker sleeps this long *before* claiming the dedup entry, so a
    /// hedge can overtake a stalled primary.
    exec_delay: Duration,
    /// Worker crashes at dequeue, before execution: billed cancelled, no
    /// dedup claim, the retransmit re-executes.
    crash_before: bool,
    /// Worker crashes after execution, before transmitting: the outcome
    /// survives in the dedup window, every reply channel drops.
    crash_after: bool,
    /// The reply frame is lost: the outcome is cached, the channel drops,
    /// the client retransmits into the cache.
    drop_reply: bool,
    /// The reply frame is truncated in transit; its checksum no longer
    /// matches and the client retransmits.
    corrupt_reply: bool,
    /// The reply frame stalls on the wire after the outcome is cached —
    /// exactly the window hedging exists to cut.
    reply_delay: Duration,
}

/// One queued request: the owned envelope plus the rendezvous reply channel.
struct Job {
    query: Query,
    page_index: usize,
    prober: ProberMode,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    enqueued_at: Instant,
    seq: u64,
    /// Idempotent request id: identical across retransmits, duplicates and
    /// hedges of one logical request.
    rid: u64,
    /// Tenant the submitting connection was opened for, if any; rides along
    /// so service-side events bill the right principal.
    tenant: Option<u32>,
    chaos: JobChaos,
    reply: Sender<Reply>,
}

/// One request id's entry in the dedup window.
enum DedupEntry {
    /// A worker is executing this id; later transmissions park their reply
    /// senders here and the executor fans the outcome out.
    InFlight(Vec<Sender<Reply>>),
    /// The id's outcome, served verbatim to any later transmission.
    Done(Reply),
}

/// Outcomes retained after completion; old entries are evicted FIFO. A
/// retransmit always lands immediately after its lost frame, so a window
/// this deep is effectively unbounded for real schedules.
const DEDUP_WINDOW: usize = 256;

/// Consecutive wire transmissions one `respond()` will attempt before
/// giving up — a safety valve, not a policy; real chaos schedules never
/// fault this many frames in a row.
const RETRANSMIT_LIMIT: usize = 32;

#[derive(Default)]
struct DedupTable {
    entries: HashMap<u64, DedupEntry>,
    /// Completed ids in completion order, for FIFO eviction.
    order: VecDeque<u64>,
}

/// State shared by the service and every connection: the service-side event
/// bus, the billing counters for requests that never reach the inner
/// source, the request-id allocator and the exactly-once dedup window.
struct ServiceShared {
    bus: Mutex<EventBus>,
    shed: AtomicU64,
    cancelled: AtomicU64,
    retransmitted: AtomicU64,
    seq: AtomicU64,
    request_ids: AtomicU64,
    dedup: Mutex<DedupTable>,
    /// Per-tenant admission token buckets, one per registry entry carrying a
    /// [`crate::tenant::RateLimit`]. Tenants without a limit are admitted
    /// unconditionally (and still metered).
    buckets: Mutex<HashMap<u32, TokenBucket>>,
}

impl ServiceShared {
    fn emit(&self, event: CrawlEvent) {
        self.bus.lock().expect("service bus poisoned").emit(event);
    }

    /// The admission decision for one request from `tenant` at time `now`:
    /// `true` unless the tenant has a rate limit and its bucket is empty.
    fn admit(&self, tenant: u32, now: Instant) -> bool {
        match self.buckets.lock().expect("admission buckets poisoned").get_mut(&tenant) {
            Some(bucket) => bucket.try_take(now),
            None => true,
        }
    }
}

/// A [`DataSource`] served over a bounded queue by worker threads. Create
/// with [`SourceService::start`], obtain clients with
/// [`connect`](SourceService::connect) /
/// [`connect_pool`](SourceService::connect_pool).
pub struct SourceService<S> {
    inner: Arc<S>,
    tx: Sender<Job>,
    shared: Arc<ServiceShared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
}

impl<S: DataSource + Send + Sync + 'static> SourceService<S> {
    /// Spawns the worker pool and starts serving `inner`.
    pub fn start(inner: Arc<S>, config: ServeConfig) -> Self {
        let (tx, rx) = bounded::<Job>(config.queue_depth);
        let now = Instant::now();
        let buckets = config
            .tenants
            .iter()
            .filter_map(|t| t.rate.map(|rate| (t.id.0, TokenBucket::new(rate, now))))
            .collect();
        let shared = Arc::new(ServiceShared {
            bus: Mutex::new(EventBus::new()),
            shed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            retransmitted: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            request_ids: AtomicU64::new(0),
            dedup: Mutex::new(DedupTable::default()),
            buckets: Mutex::new(buckets),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                let config = config.clone();
                thread::spawn(move || worker_loop(inner, rx, shared, config))
            })
            .collect();
        SourceService { inner, tx, shared, config, workers }
    }

    /// A new client connection. Connections are cheap (a channel handle and
    /// two `Arc`s) and may be cloned or created per worker.
    pub fn connect(&self) -> Connection<S> {
        Connection {
            inner: Arc::clone(&self.inner),
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            default_deadline: self.config.default_deadline,
            chaos: None,
            tenant: None,
        }
    }

    /// A connection whose requests are admitted, billed, and metered under
    /// `tenant`'s identity: the tenant's token bucket gates admission at
    /// the protocol seam, and sheds / retransmits on the connection are
    /// tagged with the tenant in the event stream. Rejects ids absent from
    /// the registry ([`ServeConfig::tenants`]).
    pub fn connect_for(&self, tenant: TenantId) -> Result<Connection<S>, ConfigError> {
        if !self.config.tenants.iter().any(|t| t.id == tenant) {
            return Err(ConfigError::UnknownTenant(tenant.0));
        }
        let mut conn = self.connect();
        conn.tenant = Some(tenant.0);
        Ok(conn)
    }

    /// A round-robin pool of `n` connections with per-connection circuit
    /// breakers at the default thresholds. `n` must be positive.
    pub fn connect_pool(&self, n: usize) -> Result<ClientPool<S>, ConfigError> {
        if n == 0 {
            return Err(ConfigError::ZeroConnections);
        }
        Ok(ClientPool {
            connections: (0..n).map(|_| self.connect()).collect(),
            cursor: AtomicUsize::new(0),
            hedge_after: None,
            breakers: (0..n).map(|_| Mutex::new(BreakerCell::default())).collect(),
        })
    }

    /// Attaches a streaming sink to the service-side event bus. Attach
    /// before traffic to capture the full stream.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        self.shared.bus.lock().expect("service bus poisoned").add_sink(sink);
    }

    /// The serving-tier report folded from the service's own event stream.
    pub fn service_report(&self) -> ServiceReport {
        self.shared.bus.lock().expect("service bus poisoned").metrics().service_report()
    }

    /// Drops the service's queue handle, joins the workers once every
    /// outstanding [`Connection`] is gone, and returns the final report.
    /// Call after dropping clients; with live connections this blocks until
    /// they disconnect.
    pub fn shutdown(self) -> ServiceReport {
        let SourceService { tx, shared, workers, .. } = self;
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        let report = shared.bus.lock().expect("service bus poisoned").metrics().service_report();
        report
    }
}

/// What the executing worker found when it claimed the job's request id.
enum Claim {
    /// First transmission: execute it.
    Fresh,
    /// Another worker is executing the id right now; the reply was parked.
    Parked,
    /// The id already completed; serve the cached outcome.
    Served(Reply),
}

/// Applies the job's reply-side chaos and ships the payload (or loses it).
fn ship_reply(job: &Job, mut payload: Reply) {
    if job.chaos.drop_reply {
        // The wire ate the reply frame: the sender drops with the job and
        // the client's recv error triggers a retransmit.
        return;
    }
    if !job.chaos.reply_delay.is_zero() {
        thread::sleep(job.chaos.reply_delay);
    }
    if job.chaos.corrupt_reply {
        if let Ok(frame) = &mut payload {
            // The checksum still describes the intact frame, so the client
            // detects the truncation and retransmits.
            truncate_wire(&mut frame.wire);
        }
    }
    let _ = job.reply.try_send(payload);
}

fn worker_loop<S: DataSource>(
    inner: Arc<S>,
    rx: Receiver<Job>,
    shared: Arc<ServiceShared>,
    config: ServeConfig,
) {
    while let Ok(job) = rx.recv() {
        let latency = |job: &Job| job.enqueued_at.elapsed().as_micros() as u64;
        if job.chaos.crash_before {
            // The worker dies holding the request and the supervisor
            // restarts it: the round is billed cancelled, no dedup entry
            // was claimed, and the dropped reply channel makes the client
            // retransmit — which re-executes from scratch.
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.emit(CrawlEvent::RequestCancelled);
            shared.emit(CrawlEvent::ServiceRestarted);
            continue;
        }
        let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
        let fired = job.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
        if expired || fired {
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.emit(CrawlEvent::RequestCancelled);
            let _ = job.reply.try_send(Err(CrawlError::Cancelled));
            continue;
        }
        if !job.chaos.exec_delay.is_zero() {
            // Chaos wire delay: the frame arrived late. Sleeping before the
            // dedup claim is what lets a hedge overtake a stalled primary.
            thread::sleep(job.chaos.exec_delay);
        }
        let claim = {
            let mut dedup = shared.dedup.lock().expect("dedup poisoned");
            match dedup.entries.get_mut(&job.rid) {
                None => {
                    dedup.entries.insert(job.rid, DedupEntry::InFlight(Vec::new()));
                    Claim::Fresh
                }
                Some(DedupEntry::InFlight(waiters)) => {
                    waiters.push(job.reply.clone());
                    Claim::Parked
                }
                Some(DedupEntry::Done(outcome)) => Claim::Served(outcome.clone()),
            }
        };
        match claim {
            Claim::Fresh => {}
            Claim::Parked => {
                // Billed as a new round (Definition 2.3 counts requests),
                // but the executing worker will fan the single outcome out.
                shared.retransmitted.fetch_add(1, Ordering::Relaxed);
                shared
                    .emit(CrawlEvent::FrameRetransmitted { request: job.rid, tenant: job.tenant });
                shared.emit(CrawlEvent::RequestCompleted { latency_us: latency(&job) });
                continue;
            }
            Claim::Served(mut outcome) => {
                shared.retransmitted.fetch_add(1, Ordering::Relaxed);
                shared
                    .emit(CrawlEvent::FrameRetransmitted { request: job.rid, tenant: job.tenant });
                let latency_us = latency(&job);
                shared.emit(CrawlEvent::RequestCompleted { latency_us });
                if let Ok(frame) = &mut outcome {
                    frame.latency_us = latency_us;
                }
                ship_reply(&job, outcome);
                continue;
            }
        }
        let modeled = config.latency.sample(config.seed, job.seq);
        if !modeled.is_zero() {
            thread::sleep(modeled);
        }
        let request = SourceRequest {
            query: &job.query,
            page_index: job.page_index,
            prober: job.prober,
            deadline: job.deadline,
            cancel: job.cancel.as_ref(),
        };
        let mut wire = None;
        let mut records = 0u32;
        let outcome = inner.respond(&request, &mut |page| {
            records = page.records.len() as u32;
            wire = Some(page_ref_to_wire(page));
        });
        if !config.decode_per_record.is_zero() && records > 0 {
            thread::sleep(config.decode_per_record * records);
        }
        let latency_us = latency(&job);
        let payload: Reply = outcome.map(|resp| {
            let wire = wire.expect("respond visits exactly once on success");
            let checksum = wire_checksum(&wire);
            ReplyFrame {
                wire,
                served_from_cache: resp.meta.served_from_cache,
                latency_us,
                checksum,
            }
        });
        // Finalize the dedup entry *before* any reply leaves: once the
        // client can observe completion, the cached outcome already exists,
        // so a retransmit can never re-execute.
        let waiters = {
            let mut dedup = shared.dedup.lock().expect("dedup poisoned");
            let waiters = match dedup.entries.insert(job.rid, DedupEntry::Done(payload.clone())) {
                Some(DedupEntry::InFlight(waiters)) => waiters,
                _ => Vec::new(),
            };
            dedup.order.push_back(job.rid);
            while dedup.order.len() > DEDUP_WINDOW {
                if let Some(old) = dedup.order.pop_front() {
                    dedup.entries.remove(&old);
                }
            }
            waiters
        };
        // Completed means "a worker finished processing it" — inner failures
        // included, so enqueued == completed + cancelled once drained.
        shared.emit(CrawlEvent::RequestCompleted { latency_us });
        if job.chaos.crash_after {
            // Crash between execute and transmit: the outcome survives in
            // the dedup window, every reply channel (ours and the parked
            // ones) drops, and every waiting client retransmits into the
            // cache — exactly-once across the crash.
            shared.emit(CrawlEvent::ServiceRestarted);
            continue;
        }
        for waiter in waiters {
            let _ = waiter.try_send(payload.clone());
        }
        ship_reply(&job, payload);
    }
}

/// What one submit attempt produced.
enum SubmitOutcome {
    /// The request frame reached the queue; await the reply here. Carries
    /// the queue depth observed at admission.
    Wait(Receiver<Reply>, u32),
    /// The chaos wire ate the request frame before the service saw it:
    /// nothing was billed; retransmit immediately.
    RequestFrameLost,
}

/// The client half of the protocol transport: a [`DataSource`] that frames
/// each request into the service's bounded queue and re-parses the reply.
///
/// Billing: `rounds_used()` is the inner source's counter plus the service's
/// shed, cancelled and retransmitted counters — every request that reached
/// the service costs one round no matter how it ends, and frames the wire
/// ate before admission cost nothing.
pub struct Connection<S> {
    inner: Arc<S>,
    tx: Sender<Job>,
    shared: Arc<ServiceShared>,
    default_deadline: Option<Duration>,
    chaos: Option<Arc<ChaosState>>,
    /// Tenant this connection was opened for
    /// ([`SourceService::connect_for`]); `None` for tenant-blind clients.
    tenant: Option<u32>,
}

impl<S> std::fmt::Debug for Connection<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("queued", &self.tx.len())
            .field("default_deadline", &self.default_deadline)
            .field("chaos", &self.chaos.is_some())
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl<S> Clone for Connection<S> {
    fn clone(&self) -> Self {
        Connection {
            inner: Arc::clone(&self.inner),
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            default_deadline: self.default_deadline,
            chaos: self.chaos.clone(),
            tenant: self.tenant,
        }
    }
}

impl<S> Connection<S> {
    /// Interposes a chaos wire between this connection and the service.
    /// Connections sharing one [`ChaosState`] share its frame counter, so a
    /// plan's frame indices count transmissions across all of them.
    pub fn with_chaos(mut self, chaos: Arc<ChaosState>) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

impl<S: DataSource> Connection<S> {
    /// Transmits one wire frame pair's worth of request: decides the chaos
    /// fate of the request and reply frames, builds the job, and offers it
    /// to the queue.
    fn submit(&self, request: &SourceRequest<'_>, rid: u64) -> Result<SubmitOutcome, CrawlError> {
        let mut jc = JobChaos::default();
        let mut duplicate = false;
        if let Some(chaos) = &self.chaos {
            if chaos.is_halted() {
                return Err(CrawlError::Cancelled);
            }
            let (frame, fault) = chaos.next_frame();
            if let Some(kind) = fault {
                chaos.note(kind);
                match kind {
                    // A corrupted request frame fails service-side framing
                    // and is discarded — observably a drop, like a downed
                    // link. None of these reach the service: unbilled.
                    ChaosKind::Drop | ChaosKind::Corrupt | ChaosKind::Disconnect => {
                        self.shared.emit(CrawlEvent::FrameDropped { frame });
                        return Ok(SubmitOutcome::RequestFrameLost);
                    }
                    ChaosKind::Stall => jc.exec_delay = chaos.plan().stall(),
                    ChaosKind::Reorder => jc.exec_delay = chaos.plan().reorder(),
                    ChaosKind::Duplicate => duplicate = true,
                    ChaosKind::Crash => jc.crash_before = true,
                    ChaosKind::Halt => return Err(CrawlError::Cancelled),
                }
            }
            // The reply frame is allocated now: every chaos decision is made
            // at submit time, so a schedule is a pure function of the frame
            // counter, independent of worker timing.
            let (reply_frame, reply_fault) = chaos.next_frame();
            if let Some(kind) = reply_fault {
                chaos.note(kind);
                match kind {
                    ChaosKind::Drop | ChaosKind::Disconnect => {
                        jc.drop_reply = true;
                        self.shared.emit(CrawlEvent::FrameDropped { frame: reply_frame });
                    }
                    ChaosKind::Corrupt => jc.corrupt_reply = true,
                    ChaosKind::Stall => jc.reply_delay = chaos.plan().stall(),
                    ChaosKind::Reorder => jc.reply_delay = chaos.plan().reorder(),
                    // A doubled reply is discarded by the client; tally only.
                    ChaosKind::Duplicate => {}
                    ChaosKind::Crash => jc.crash_after = true,
                    // The halt latched; it takes effect on the next
                    // transmission, after this request completes.
                    ChaosKind::Halt => {}
                }
            }
        }
        if let Some(tenant) = self.tenant {
            if !self.shared.admit(tenant, Instant::now()) {
                // Token bucket empty: shed at the protocol seam and bill the
                // round to the offending tenant (the request reached the
                // service; Definition 2.3 counts requests, not outcomes).
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.emit(CrawlEvent::RequestShed);
                self.shared.emit(CrawlEvent::TenantThrottled { tenant });
                return Err(CrawlError::Rejected);
            }
        }
        let deadline =
            request.deadline.or_else(|| self.default_deadline.map(|d| Instant::now() + d));
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            query: request.query.clone(),
            page_index: request.page_index,
            prober: request.prober,
            deadline,
            cancel: request.cancel.cloned(),
            enqueued_at: Instant::now(),
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            rid,
            tenant: self.tenant,
            chaos: jc,
            reply: reply_tx,
        };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // Shed at admission: the request reached the service, so the
                // service bills the round itself — to the tenant, when the
                // connection has one.
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.shared.emit(CrawlEvent::RequestShed);
                if let Some(tenant) = self.tenant {
                    self.shared.emit(CrawlEvent::TenantThrottled { tenant });
                }
                return Err(CrawlError::Rejected);
            }
            Err(TrySendError::Disconnected(_)) => return Err(CrawlError::Cancelled),
        }
        let depth = self.tx.len() as u32;
        self.shared.emit(CrawlEvent::RequestEnqueued { depth });
        if let Some(tenant) = self.tenant {
            self.shared.emit(CrawlEvent::TenantAdmitted { tenant });
        }
        if duplicate {
            // The wire doubled the request frame: a second job with the
            // same request id. The dedup window bills it as a retransmit
            // and never re-executes; its reply channel is discarded.
            let (dup_tx, _dup_rx) = bounded(1);
            let dup = Job {
                query: request.query.clone(),
                page_index: request.page_index,
                prober: request.prober,
                deadline,
                cancel: request.cancel.cloned(),
                enqueued_at: Instant::now(),
                seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
                rid,
                tenant: self.tenant,
                chaos: JobChaos::default(),
                reply: dup_tx,
            };
            match self.tx.try_send(dup) {
                Ok(()) => {
                    self.shared.emit(CrawlEvent::RequestEnqueued { depth: self.tx.len() as u32 });
                    if let Some(tenant) = self.tenant {
                        self.shared.emit(CrawlEvent::TenantAdmitted { tenant });
                    }
                }
                Err(TrySendError::Full(_)) => {
                    self.shared.shed.fetch_add(1, Ordering::Relaxed);
                    self.shared.emit(CrawlEvent::RequestShed);
                    if let Some(tenant) = self.tenant {
                        self.shared.emit(CrawlEvent::TenantThrottled { tenant });
                    }
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
        Ok(SubmitOutcome::Wait(reply_rx, depth))
    }

    /// The full client-side protocol for one logical request: transmit,
    /// await, verify, and retransmit with the same request id until the
    /// wire yields an intact frame (or a definitive error).
    fn respond_with_rid(
        &self,
        request: &SourceRequest<'_>,
        rid: u64,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        for _ in 0..RETRANSMIT_LIMIT {
            let (reply_rx, depth) = match self.submit(request, rid)? {
                SubmitOutcome::Wait(rx, depth) => (rx, depth),
                SubmitOutcome::RequestFrameLost => continue,
            };
            let frame = match reply_rx.recv() {
                Ok(Ok(frame)) => frame,
                // A definitive outcome from the service (inner error,
                // cancel, …) ends the protocol — no retransmission.
                Ok(Err(e)) => return Err(e),
                // The reply channel died without an answer: the reply frame
                // was lost or the worker crashed. Retransmit; the dedup
                // window guarantees we never re-execute a completed request.
                Err(_) => continue,
            };
            if wire_checksum(&frame.wire) != frame.checksum {
                // Truncated in transit; the intact frame is cached.
                continue;
            }
            let page = parse_page_ref(&frame.wire).map_err(|_| CrawlError::CorruptPage)?;
            let meta = PageMeta {
                page_index: page.page_index,
                total_matches: page.total_matches,
                has_more: page.has_more,
                served_from_cache: frame.served_from_cache,
            };
            visit(&page);
            return Ok(SourceResponse {
                meta,
                service: Some(ServiceMeta { queue_depth: depth, latency_us: frame.latency_us }),
            });
        }
        // The wire never stabilized within the safety valve.
        Err(CrawlError::Cancelled)
    }
}

impl<S: DataSource> DataSource for Connection<S> {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let rid = self.shared.request_ids.fetch_add(1, Ordering::Relaxed);
        self.respond_with_rid(request, rid, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        self.inner.interface()
    }

    fn rounds_used(&self) -> u64 {
        self.inner.rounds_used()
            + self.shared.shed.load(Ordering::Relaxed)
            + self.shared.cancelled.load(Ordering::Relaxed)
            + self.shared.retransmitted.load(Ordering::Relaxed)
    }
}

/// One connection's circuit breaker plus the failure streak feeding it.
struct BreakerCell {
    breaker: CircuitBreaker,
    streak: u32,
}

impl Default for BreakerCell {
    fn default() -> Self {
        BreakerCell { breaker: CircuitBreaker::new(BreakerConfig::default()), streak: 0 }
    }
}

/// An owned copy of a request envelope, so hedge attempts can cross thread
/// boundaries.
#[derive(Clone)]
struct OwnedRequest {
    query: Query,
    page_index: usize,
    prober: ProberMode,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl OwnedRequest {
    fn capture(request: &SourceRequest<'_>) -> Self {
        OwnedRequest {
            query: request.query.clone(),
            page_index: request.page_index,
            prober: request.prober,
            deadline: request.deadline,
            cancel: request.cancel.cloned(),
        }
    }

    /// Swaps in the pool-owned hedge token, so the pool can cancel a losing
    /// hedge without ever firing the caller's (crawl-wide) token.
    fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    fn as_request(&self) -> SourceRequest<'_> {
        SourceRequest {
            query: &self.query,
            page_index: self.page_index,
            prober: self.prober,
            deadline: self.deadline,
            cancel: self.cancel.as_ref(),
        }
    }
}

/// Runs one transmission protocol attempt on its own thread, reporting the
/// outcome (and the harvested page) on `tx`.
fn spawn_attempt<S: DataSource + Send + Sync + 'static>(
    conn: Connection<S>,
    request: OwnedRequest,
    rid: u64,
    tx: Sender<(Result<SourceResponse, CrawlError>, Option<ExtractedPage>)>,
) {
    thread::spawn(move || {
        let mut page = None;
        let result = conn.respond_with_rid(&request.as_request(), rid, &mut |view| {
            page = Some(view.to_owned_page());
        });
        let _ = tx.try_send((result, page));
    });
}

/// A round-robin pool of [`Connection`]s — the fleet-facing client when N
/// logical connections share one service. Also a [`DataSource`]; the round
/// counters are shared, so billing is global across the pool.
///
/// Every pool carries a circuit breaker per connection: streaks of
/// [`CrawlError::Rejected`] / [`CrawlError::Cancelled`] trip the connection
/// out of rotation until its cooldown elapses and a half-open probe
/// succeeds. [`with_hedging`](ClientPool::with_hedging) additionally races
/// a same-id duplicate of any request whose reply exceeds the threshold.
pub struct ClientPool<S> {
    connections: Vec<Connection<S>>,
    cursor: AtomicUsize,
    hedge_after: Option<Duration>,
    breakers: Vec<Mutex<BreakerCell>>,
}

impl<S> std::fmt::Debug for ClientPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool")
            .field("connections", &self.connections.len())
            .field("hedge_after", &self.hedge_after)
            .finish()
    }
}

impl<S> ClientPool<S> {
    /// Number of connections in the pool.
    pub fn connections(&self) -> usize {
        self.connections.len()
    }

    /// Enables request hedging: when a reply takes longer than `threshold`,
    /// the pool races a duplicate (same request id — the dedup window makes
    /// the race safe) on the next connection and takes whichever reply
    /// lands first, cancelling the loser.
    pub fn with_hedging(mut self, threshold: Duration) -> Self {
        self.hedge_after = Some(threshold);
        self
    }

    /// Replaces every connection's circuit breaker with one at the given
    /// thresholds (streaks reset).
    pub fn with_breakers(self, config: BreakerConfig) -> Self {
        for cell in &self.breakers {
            let mut cell = cell.lock().expect("breaker poisoned");
            cell.breaker = CircuitBreaker::new(config);
            cell.streak = 0;
        }
        self
    }

    /// Interposes one chaos wire in front of every connection in the pool.
    /// They share the frame counter, so plan indices count transmissions
    /// pool-wide.
    pub fn with_chaos(mut self, chaos: Arc<ChaosState>) -> Self {
        for conn in &mut self.connections {
            conn.chaos = Some(Arc::clone(&chaos));
        }
        self
    }

    fn emit_transition(&self, idx: usize, from: BreakerPhase, to: BreakerPhase) {
        self.connections[idx].shared.emit(CrawlEvent::BreakerTransition {
            job: idx as u32,
            from,
            to,
        });
    }

    /// One allocation round: cool open breakers, then pick the round-robin
    /// choice, skipping connections whose breaker is open. With every
    /// breaker open the pool degrades to plain round-robin rather than
    /// refusing service.
    fn pick(&self) -> usize {
        let n = self.connections.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        for (idx, cell) in self.breakers.iter().enumerate() {
            let transition = cell.lock().expect("breaker poisoned").breaker.tick();
            if let Some((from, to)) = transition {
                self.emit_transition(idx, from, to);
            }
        }
        for offset in 0..n {
            let idx = (start + offset) % n;
            if !self.breakers[idx].lock().expect("breaker poisoned").breaker.is_open() {
                return idx;
            }
        }
        start
    }

    /// Feeds one dispatch outcome into the chosen connection's breaker.
    /// Service-level failures (shed, cancelled) count against the
    /// connection; inner-source errors travelled the wire fine and do not.
    fn settle(&self, idx: usize, outcome: &Result<SourceResponse, CrawlError>) {
        let failed = matches!(outcome, Err(CrawlError::Rejected) | Err(CrawlError::Cancelled));
        let transition = {
            let mut cell = self.breakers[idx].lock().expect("breaker poisoned");
            cell.streak = if failed { cell.streak.saturating_add(1) } else { 0 };
            let streak = cell.streak;
            let transition = cell.breaker.observe(streak);
            if let Some((_, BreakerPhase::Open)) = transition {
                // The streak restarts its count toward the next trip; the
                // half-open probe's own outcome decides recovery.
                cell.streak = 0;
            }
            transition
        };
        if let Some((from, to)) = transition {
            self.emit_transition(idx, from, to);
        }
    }
}

impl<S: DataSource + Send + Sync + 'static> ClientPool<S> {
    /// The hedged transmission protocol: run the primary attempt on its own
    /// thread, and if the reply outlives the threshold, race a same-id
    /// duplicate on the next connection. First intact reply wins; the
    /// loser's token is fired so a still-queued hedge cancels instead of
    /// executing.
    fn respond_hedged(
        &self,
        primary: usize,
        threshold: Duration,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let conn = &self.connections[primary];
        let rid = conn.shared.request_ids.fetch_add(1, Ordering::Relaxed);
        let owned = OwnedRequest::capture(request);
        let (tx, rx) = bounded(2);
        spawn_attempt(conn.clone(), owned.clone(), rid, tx.clone());
        let (result, page) = match rx.recv_timeout(threshold) {
            Ok(first) => first,
            Err(RecvTimeoutError::Timeout) => {
                conn.shared.emit(CrawlEvent::Hedged { request: rid });
                let hedge_token = CancelToken::new();
                let hedge_idx = (primary + 1) % self.connections.len();
                spawn_attempt(
                    self.connections[hedge_idx].clone(),
                    owned.with_cancel(hedge_token.clone()),
                    rid,
                    tx,
                );
                match rx.recv() {
                    Ok(first) => {
                        // First reply wins. If the primary won, this cancels
                        // the hedge wherever it still queues; if the hedge
                        // won, the token is already spent.
                        hedge_token.cancel();
                        first
                    }
                    Err(_) => return Err(CrawlError::Cancelled),
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Err(CrawlError::Cancelled),
        };
        let response = result?;
        let page = page.expect("winning attempt visited exactly once");
        visit(&ExtractedPageRef::borrowed(&page));
        Ok(response)
    }
}

impl<S: DataSource + Send + Sync + 'static> DataSource for ClientPool<S> {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let idx = self.pick();
        let outcome = match self.hedge_after {
            None => self.connections[idx].respond(request, visit),
            Some(threshold) => self.respond_hedged(idx, threshold, request, visit),
        };
        self.settle(idx, &outcome);
        outcome
    }

    fn interface(&self) -> &InterfaceSpec {
        self.connections[0].interface()
    }

    fn rounds_used(&self) -> u64 {
        // Counters are shared service-wide; any connection reports them all.
        self.connections[0].rounds_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::events::MemorySink;
    use crate::metrics::replay_service_report;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;
    use dwc_server::{InterfaceSpec, WebDbServer};

    fn server() -> WebDbServer {
        let table = figure1_table();
        let spec = InterfaceSpec::permissive(table.schema(), 2);
        WebDbServer::new(table, spec)
    }

    fn a2(server: &WebDbServer) -> Query {
        Query::Value(server.table().interner().get(AttrId(0), "a2").unwrap())
    }

    /// A service over the figure-1 fixture with a chaos wire on one
    /// connection.
    fn chaos_rig(
        plan: ChaosPlan,
    ) -> (Arc<WebDbServer>, SourceService<WebDbServer>, Connection<WebDbServer>, Arc<ChaosState>)
    {
        let inner = Arc::new(server());
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let chaos = Arc::new(ChaosState::new(plan));
        let conn = service.connect().with_chaos(Arc::clone(&chaos));
        (inner, service, conn, chaos)
    }

    fn fetch_owned(
        conn: &Connection<WebDbServer>,
        query: &Query,
    ) -> Result<crate::extract::ExtractedPage, CrawlError> {
        let mut owned = None;
        conn.respond(&SourceRequest::new(query, 0, ProberMode::Wire), &mut |page| {
            owned = Some(page.to_owned_page());
        })?;
        Ok(owned.expect("respond visits exactly once on success"))
    }

    #[test]
    fn builder_validates_all_knobs_together() {
        assert_eq!(
            ServeConfig::builder().queue_depth(0).build().unwrap_err(),
            ConfigError::ZeroQueueDepth
        );
        assert_eq!(
            ServeConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroBudget("workers")
        );
        assert_eq!(
            ServeConfig::builder().default_deadline(Duration::ZERO).build().unwrap_err(),
            ConfigError::ZeroDeadline
        );
        let ok = ServeConfig::builder()
            .queue_depth(4)
            .workers(2)
            .latency(LatencyModel::Fixed(Duration::from_micros(10)))
            .default_deadline(Duration::from_millis(100))
            .build()
            .unwrap();
        assert_eq!(ok.queue_depth, 4);
        assert_eq!(ok.workers, 2);
    }

    #[test]
    fn zero_connection_pools_are_rejected() {
        let service = SourceService::start(Arc::new(server()), ServeConfig::default());
        assert_eq!(service.connect_pool(0).unwrap_err(), ConfigError::ZeroConnections);
        assert_eq!(service.connect_pool(3).unwrap().connections(), 3);
    }

    #[test]
    fn protocol_response_matches_in_process_response() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let mut direct = None;
        let direct_meta = inner
            .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |page| {
                direct = Some(page.to_owned_page());
            })
            .unwrap();
        assert!(direct_meta.service.is_none());

        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let conn = service.connect();
        let mut served = None;
        let response = conn
            .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |page| {
                served = Some(page.to_owned_page());
            })
            .unwrap();
        assert_eq!(served, direct);
        assert_eq!(response.meta.page_index, direct_meta.meta.page_index);
        assert_eq!(response.meta.total_matches, direct_meta.meta.total_matches);
        assert_eq!(response.meta.has_more, direct_meta.meta.has_more);
        let service_meta = response.service.expect("protocol responses carry service meta");
        assert!(service_meta.latency_us < 10_000_000);

        // One executed request, zero shed/cancelled: billing matches the
        // inner counter exactly (the direct probe billed one round too).
        assert_eq!(conn.rounds_used(), inner.rounds_used());
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.enqueued, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.shed, 0);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.retransmitted, 0);
        assert_eq!(report.frames_dropped, 0);
    }

    #[test]
    fn full_queue_sheds_at_admission_and_bills_the_round() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let config = ServeConfig::builder()
            .queue_depth(1)
            .workers(1)
            .latency(LatencyModel::Fixed(Duration::from_millis(150)))
            .build()
            .unwrap();
        let service = SourceService::start(Arc::clone(&inner), config);

        // Stagger two slow requests so neither collides at admission: the
        // first is executing (~150ms) by the time the second is queued.
        let spawn_one = |service: &SourceService<WebDbServer>| {
            let conn = service.connect();
            let query = query.clone();
            thread::spawn(move || {
                conn.respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| {})
            })
        };
        let first = spawn_one(&service);
        thread::sleep(Duration::from_millis(50));
        let second = spawn_one(&service);
        thread::sleep(Duration::from_millis(50));

        // One executing + one queued: the single-slot queue is full, so the
        // probe must be shed at the door, immediately, without queueing.
        let conn = service.connect();
        let probe_started = Instant::now();
        let err = conn
            .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| {})
            .unwrap_err();
        assert_eq!(err, CrawlError::Rejected);
        assert!(err.is_transient(), "rejection must be retryable");
        assert!(
            probe_started.elapsed() < Duration::from_millis(100),
            "shedding happens at admission, not after queueing"
        );

        first.join().unwrap().unwrap();
        second.join().unwrap().unwrap();
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.shed, 1);
        assert!(report.shed_rate() > 0.0);
        assert_eq!(report.enqueued, 2);
        assert_eq!(report.completed, 2);
        // Conservation: executed requests billed by the inner source, shed
        // ones by the service's own counter.
        assert_eq!(inner.rounds_used(), 2);
        assert_eq!(inner.rounds_used() + report.shed, 3);
    }

    #[test]
    fn expired_deadline_cancels_at_dequeue_and_bills_the_round() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let conn = service.connect();

        let request = SourceRequest::new(&query, 0, ProberMode::Wire).with_deadline(Instant::now());
        let err = conn.respond(&request, &mut |_| {}).unwrap_err();
        assert_eq!(err, CrawlError::Cancelled);
        assert_eq!(conn.rounds_used(), inner.rounds_used() + 1);

        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.enqueued, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn fired_token_cancels_queued_requests() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let conn = service.connect();

        let token = CancelToken::new();
        token.cancel();
        let request = SourceRequest::new(&query, 0, ProberMode::Wire).with_cancel(&token);
        assert_eq!(conn.respond(&request, &mut |_| {}).unwrap_err(), CrawlError::Cancelled);

        drop(conn);
        assert_eq!(service.shutdown().cancelled, 1);
    }

    #[test]
    fn pool_round_robins_and_shares_billing() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let pool = service.connect_pool(3).unwrap();
        for _ in 0..6 {
            pool.respond(&SourceRequest::new(&query, 0, ProberMode::InProcess), &mut |_| {})
                .unwrap();
        }
        assert_eq!(pool.rounds_used(), 6);
        assert_eq!(pool.rounds_used(), inner.rounds_used());
        drop(pool);
        assert_eq!(service.shutdown().completed, 6);
    }

    #[test]
    fn service_report_replays_from_the_recorded_stream() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let sink = MemorySink::new();
        service.add_sink(Box::new(sink.clone()));
        let conn = service.connect();
        for page in 0..2 {
            conn.respond(&SourceRequest::new(&query, page, ProberMode::Wire), &mut |_| {}).unwrap();
        }
        let expired = SourceRequest::new(&query, 0, ProberMode::Wire).with_deadline(Instant::now());
        conn.respond(&expired, &mut |_| {}).unwrap_err();
        drop(conn);
        let live = service.shutdown();
        assert_eq!(replay_service_report(&sink.collected()), live);
        assert_eq!(live.enqueued, 3);
        assert_eq!(live.completed, 2);
        assert_eq!(live.cancelled, 1);
    }

    #[test]
    fn uniform_latency_samples_are_seeded_and_bounded() {
        let model = LatencyModel::Uniform {
            min: Duration::from_micros(100),
            max: Duration::from_micros(900),
        };
        for seq in 0..64 {
            let d = model.sample(7, seq);
            assert!(d >= Duration::from_micros(100) && d <= Duration::from_micros(900));
            assert_eq!(d, model.sample(7, seq), "same seed+seq must resample identically");
        }
        assert_eq!(LatencyModel::None.sample(1, 2), Duration::ZERO);
        assert_eq!(
            LatencyModel::Fixed(Duration::from_millis(3)).sample(1, 2),
            Duration::from_millis(3)
        );
    }

    #[test]
    fn dropped_request_frames_bill_nothing_and_retransmit() {
        // Frame 1 is the first request frame: the wire eats it.
        let (inner, service, conn, chaos) = chaos_rig(ChaosPlan::new().drop_at(1));
        let query = a2(&inner);
        let direct = {
            let mut owned = None;
            inner
                .respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |page| {
                    owned = Some(page.to_owned_page());
                })
                .unwrap();
            owned.unwrap()
        };
        let served = fetch_owned(&conn, &query).unwrap();
        assert_eq!(served, direct, "retransmitted payload is byte-identical");
        // The dropped frame never reached the service: only the retransmit
        // (which executed) is billed.
        assert_eq!(inner.rounds_used(), 2, "direct probe + one service execution");
        assert_eq!(conn.rounds_used(), inner.rounds_used());
        assert_eq!(chaos.tally().dropped, 1);
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.frames_dropped, 1);
        assert_eq!(report.retransmitted, 0, "the retransmit executed fresh, no dedup hit");
        assert_eq!(report.enqueued, 1);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn dropped_reply_is_billed_once_executed_once_served_from_dedup() {
        // Frame 2 is the first reply frame: executed, then lost on the wire.
        let (inner, service, conn, _chaos) = chaos_rig(ChaosPlan::new().drop_at(2));
        let query = a2(&inner);
        let served = fetch_owned(&conn, &query).unwrap();
        assert!(!served.records.is_empty());
        assert_eq!(inner.rounds_used(), 1, "executed exactly once");
        // One executed + one retransmit served from the dedup window.
        assert_eq!(conn.rounds_used(), 2);
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.frames_dropped, 1);
        assert_eq!(report.retransmitted, 1);
        assert_eq!(report.enqueued, 2);
        assert_eq!(report.completed, 2);
        // Conservation: rounds = executed + shed + cancelled + retransmitted.
        assert_eq!(
            conn_rounds(&report, inner.rounds_used()),
            2,
            "billing conservation under reply loss"
        );
    }

    /// `executed + shed + cancelled + retransmitted`, the conservation sum.
    fn conn_rounds(report: &ServiceReport, executed: u64) -> u64 {
        executed + report.shed + report.cancelled + report.retransmitted
    }

    #[test]
    fn corrupted_reply_retransmits_and_serves_the_intact_frame() {
        let (inner, service, conn, chaos) = chaos_rig(ChaosPlan::new().corrupt_at(2));
        let query = a2(&inner);
        let served = fetch_owned(&conn, &query).unwrap();
        assert!(!served.records.is_empty(), "client never sees the truncated frame");
        assert_eq!(inner.rounds_used(), 1);
        assert_eq!(conn.rounds_used(), 2);
        assert_eq!(chaos.tally().corrupted, 1);
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.retransmitted, 1);
    }

    #[test]
    fn crash_before_execution_bills_cancelled_and_reexecutes() {
        let (inner, service, conn, _chaos) = chaos_rig(ChaosPlan::new().crash_at(1));
        let query = a2(&inner);
        assert!(fetch_owned(&conn, &query).is_ok());
        assert_eq!(inner.rounds_used(), 1, "the retransmit is the only execution");
        // Crashed attempt billed cancelled + the retransmit executed.
        assert_eq!(conn.rounds_used(), 2);
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.retransmitted, 0, "nothing was cached before the crash");
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn crash_after_execution_survives_via_the_dedup_window() {
        // Frame 2 = reply frame of the first request: crash after execute.
        let (inner, service, conn, _chaos) = chaos_rig(ChaosPlan::new().crash_at(2));
        let query = a2(&inner);
        assert!(fetch_owned(&conn, &query).is_ok());
        assert_eq!(inner.rounds_used(), 1, "exactly-once across the crash");
        assert_eq!(conn.rounds_used(), 2);
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.cancelled, 0);
        assert_eq!(report.retransmitted, 1, "the retransmit was served from the dedup window");
        assert_eq!(report.enqueued, 2);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn halt_fails_unbilled() {
        let (inner, service, conn, chaos) = chaos_rig(ChaosPlan::new().halt_at(1));
        let query = a2(&inner);
        assert_eq!(fetch_owned(&conn, &query).unwrap_err(), CrawlError::Cancelled);
        assert!(chaos.is_halted());
        assert_eq!(conn.rounds_used(), 0, "a halted service bills nothing");
        assert_eq!(fetch_owned(&conn, &query).unwrap_err(), CrawlError::Cancelled);
        drop(conn);
        let report = service.shutdown();
        assert_eq!(report.enqueued, 0);
    }

    #[test]
    fn duplicated_request_frame_is_billed_but_not_reexecuted() {
        let (inner, service, conn, chaos) = chaos_rig(ChaosPlan::new().duplicate_at(1));
        let query = a2(&inner);
        assert!(fetch_owned(&conn, &query).is_ok());
        // Wait for the duplicate job to drain before reading counters.
        drop(conn);
        let report = service.shutdown();
        assert_eq!(inner.rounds_used(), 1, "the double executes once");
        assert_eq!(chaos.tally().duplicated, 1);
        assert_eq!(report.enqueued, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.retransmitted, 1);
    }

    #[test]
    fn hedging_races_a_duplicate_and_executes_once() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let config = ServeConfig::builder()
            .workers(2)
            .latency(LatencyModel::Fixed(Duration::from_millis(20)))
            .build()
            .unwrap();
        let service = SourceService::start(Arc::clone(&inner), config);
        let pool = service.connect_pool(2).unwrap().with_hedging(Duration::from_millis(1));
        let mut seen = false;
        pool.respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| seen = true)
            .unwrap();
        assert!(seen);
        drop(pool);
        let report = service.shutdown();
        assert_eq!(report.hedged, 1, "the 20ms reply outlived the 1ms threshold");
        assert_eq!(inner.rounds_used(), 1, "dedup keeps the race exactly-once");
        // The hedge is billed: one executed + one retransmitted round.
        assert_eq!(report.retransmitted, 1);
    }

    #[test]
    fn breaker_trips_out_of_rotation_and_recovers_via_half_open_probe() {
        let inner = Arc::new(server());
        let query = a2(&inner);
        let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
        let pool = service
            .connect_pool(1)
            .unwrap()
            .with_breakers(BreakerConfig { trip_after: 2, cooldown: 1 });
        // Two service-level failures (expired deadlines) trip the breaker.
        for _ in 0..2 {
            let expired =
                SourceRequest::new(&query, 0, ProberMode::Wire).with_deadline(Instant::now());
            assert_eq!(pool.respond(&expired, &mut |_| {}).unwrap_err(), CrawlError::Cancelled);
        }
        // Next dispatch ticks the cooldown into HalfOpen and probes; the
        // clean probe recovers the breaker.
        pool.respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| {}).unwrap();
        pool.respond(&SourceRequest::new(&query, 0, ProberMode::Wire), &mut |_| {}).unwrap();
        drop(pool);
        let report = service.shutdown();
        assert_eq!(report.breaker_trips, 1);
        assert_eq!(report.breaker_recoveries, 1);
    }

    #[test]
    fn checksum_catches_truncation_and_roundtrips_cleanly() {
        let intact = "<page><r a=\"x\"/></page>".to_owned();
        let sum = wire_checksum(&intact);
        assert_eq!(sum, wire_checksum(&intact.clone()));
        let mut cut = intact.clone();
        truncate_wire(&mut cut);
        assert!(cut.len() < intact.len());
        assert_ne!(wire_checksum(&cut), sum);
    }
}
