//! Seeded, deterministic multi-kind fault injection — the harness the
//! fault-tolerance layer is tested against.
//!
//! [`crate::FaultySource`] injects one failure mode (a transient error every
//! N requests). A production crawler faces a richer bestiary: bursts of
//! throttling, requests that stall and waste wall-clock rounds, result pages
//! that arrive truncated, and faults severe enough to kill the worker
//! process outright. [`FaultPlan`] schedules any mix of these at exact
//! request indices — either hand-placed or generated from a seed — so every
//! recovery path (retry, requeue, checkpoint resume, supervisor restart,
//! circuit breaker) can be exercised deterministically and asserted on.
//!
//! A plan is *pure schedule*; [`FaultPlanSource`] is the [`DataSource`]
//! decorator that executes it. The decorator's mutable side (the request
//! counter and per-kind tallies) lives behind an `Arc`, so clones of one
//! `FaultPlanSource` share a single schedule position — exactly what a fleet
//! supervisor needs to hold a handle to the same faulty source its worker
//! crawls (and to keep the schedule advancing across worker restarts instead
//! of replaying the same fault forever).

use crate::extract::{page_to_wire, parse_page, ExtractedPage};
use crate::source::{CrawlError, DataSource};
use dwc_server::InterfaceSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `splitmix64` — the one tiny generator behind every seeded schedule in the
/// engine: fault plans, chaos plans ([`crate::chaos::ChaosPlan`]), service
/// latency sampling, and retry jitter. Stateless form: mixes its input with
/// the golden-ratio increment, so independent streams decorrelate by salting
/// the input.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The golden-ratio increment that steps a splitmix64 stream; request/frame
/// numbers are multiplied by it before mixing so consecutive indices land in
/// uncorrelated parts of the sequence.
pub(crate) const SPLITMIX_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A plain transient failure (throttle / 5xx): the round is billed, a
    /// retry may succeed.
    Transient,
    /// A stalled request: billed as one round plus `rounds` extra elapsed
    /// rounds of waiting (surfaced as [`CrawlError::Stalled`]).
    Stall {
        /// Extra elapsed rounds wasted waiting for the response.
        rounds: u64,
    },
    /// The result page is truncated in flight; the Result Extractor rejects
    /// it (surfaced as [`CrawlError::CorruptPage`]). The request *does* reach
    /// the source and is billed there.
    Corrupt,
    /// A worker-killing panic — models a crash of the crawling process
    /// itself. Only a supervisor ([`crate::fleet::run_fleet_supervised`])
    /// survives this; the fault fires exactly once per scheduled index.
    Panic,
}

/// A deterministic schedule mapping 1-based request numbers to faults.
///
/// Build one by placing events explicitly ([`transient_at`](Self::transient_at),
/// [`burst`](Self::burst), [`stall_at`](Self::stall_at),
/// [`corrupt_at`](Self::corrupt_at), [`panic_at`](Self::panic_at)) or
/// generate a reproducible mix from a seed ([`seeded`](Self::seeded)).
/// Requests not named by the plan succeed normally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at request number `request_no` (1-based), replacing
    /// any event already there.
    pub fn at(mut self, request_no: u64, kind: FaultKind) -> Self {
        assert!(request_no > 0, "request numbers are 1-based");
        self.events.insert(request_no, kind);
        self
    }

    /// Schedules a plain transient failure at `request_no`.
    pub fn transient_at(self, request_no: u64) -> Self {
        self.at(request_no, FaultKind::Transient)
    }

    /// Schedules a burst of `len` consecutive transient failures starting at
    /// request `start` — the pattern that trips a circuit breaker.
    pub fn burst(mut self, start: u64, len: u64) -> Self {
        assert!(start > 0, "request numbers are 1-based");
        for i in 0..len {
            self.events.insert(start + i, FaultKind::Transient);
        }
        self
    }

    /// Schedules a stall of `rounds` extra elapsed rounds at `request_no`.
    pub fn stall_at(self, request_no: u64, rounds: u64) -> Self {
        self.at(request_no, FaultKind::Stall { rounds })
    }

    /// Schedules a truncated/corrupt result page at `request_no`.
    pub fn corrupt_at(self, request_no: u64) -> Self {
        self.at(request_no, FaultKind::Corrupt)
    }

    /// Schedules a worker-killing panic at `request_no`.
    pub fn panic_at(self, request_no: u64) -> Self {
        self.at(request_no, FaultKind::Panic)
    }

    /// Generates a reproducible plan from `seed`: roughly `rate` of the first
    /// `horizon` requests fault, cycling through `kinds` in a seed-shuffled
    /// order. The same `(seed, horizon, rate, kinds)` always yields the same
    /// plan — run-to-run reproducibility is the whole point.
    pub fn seeded(seed: u64, horizon: u64, rate: f64, kinds: &[FaultKind]) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must lie in [0, 1]");
        let mut plan = FaultPlan::new();
        if kinds.is_empty() || rate == 0.0 {
            return plan;
        }
        let threshold = (rate * u64::MAX as f64) as u64;
        let mut pick = 0usize;
        for request_no in 1..=horizon {
            if splitmix64(seed.wrapping_add(request_no.wrapping_mul(SPLITMIX_STEP))) <= threshold {
                let kind = kinds[pick % kinds.len()];
                pick += 1;
                plan.events.insert(request_no, kind);
            }
        }
        plan
    }

    /// The fault scheduled at `request_no`, if any.
    pub fn event_at(&self, request_no: u64) -> Option<FaultKind> {
        self.events.get(&request_no).copied()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates `(request_no, kind)` in request order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, FaultKind)> + '_ {
        self.events.iter().map(|(&n, &k)| (n, k))
    }
}

/// Per-kind injection tallies of a [`FaultPlanSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Transient failures injected (including burst members).
    pub transient: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Corrupt pages injected.
    pub corrupt: u64,
    /// Panics fired.
    pub panics: u64,
}

impl FaultTally {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.transient + self.stalls + self.corrupt + self.panics
    }
}

#[derive(Debug, Default)]
struct PlanState {
    requests: AtomicU64,
    transient: AtomicU64,
    stalls: AtomicU64,
    corrupt: AtomicU64,
    panics: AtomicU64,
}

/// A [`DataSource`] decorator executing a [`FaultPlan`].
///
/// Request numbering is global across clones: the schedule position lives in
/// a shared `Arc`, so a supervisor's handle and its worker's handle count the
/// same stream of requests. Billing mirrors reality: transient, stall, and
/// panic faults consume the request *before* it reaches the inner source
/// (billed here), while a corrupt page *was* served (billed by the inner
/// source, merely mangled in flight).
#[derive(Debug)]
pub struct FaultPlanSource<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    state: Arc<PlanState>,
}

impl<S: Clone> Clone for FaultPlanSource<S> {
    fn clone(&self) -> Self {
        FaultPlanSource {
            inner: self.inner.clone(),
            plan: Arc::clone(&self.plan),
            state: Arc::clone(&self.state),
        }
    }
}

impl<S: DataSource> FaultPlanSource<S> {
    /// Wraps `inner`, failing requests per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultPlanSource { inner, plan: Arc::new(plan), state: Arc::new(PlanState::default()) }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The schedule being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Requests seen so far (served or faulted), across all clones.
    pub fn requests_seen(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Per-kind injection tallies so far, across all clones.
    pub fn tally(&self) -> FaultTally {
        FaultTally {
            transient: self.state.transient.load(Ordering::Relaxed),
            stalls: self.state.stalls.load(Ordering::Relaxed),
            corrupt: self.state.corrupt.load(Ordering::Relaxed),
            panics: self.state.panics.load(Ordering::Relaxed),
        }
    }

    /// Faults injected that consumed the request before it reached the inner
    /// source (transient + stall + panic) — the wrapper-billed rounds.
    fn absorbed(&self) -> u64 {
        self.state.transient.load(Ordering::Relaxed)
            + self.state.stalls.load(Ordering::Relaxed)
            + self.state.panics.load(Ordering::Relaxed)
    }
}

impl<S: DataSource> DataSource for FaultPlanSource<S> {
    fn respond(
        &self,
        request: &crate::source::SourceRequest<'_>,
        visit: &mut dyn FnMut(&crate::extract::ExtractedPageRef<'_>),
    ) -> Result<crate::source::SourceResponse, CrawlError> {
        let request_no = self.state.requests.fetch_add(1, Ordering::Relaxed) + 1;
        match self.plan.event_at(request_no) {
            None => self.inner.respond(request, visit),
            Some(FaultKind::Transient) => {
                self.state.transient.fetch_add(1, Ordering::Relaxed);
                Err(CrawlError::Transient)
            }
            Some(FaultKind::Stall { rounds }) => {
                self.state.stalls.fetch_add(1, Ordering::Relaxed);
                Err(CrawlError::Stalled { wasted_rounds: rounds })
            }
            Some(FaultKind::Corrupt) => {
                // The inner request executes (and is billed there), but the
                // caller's visitor never runs: the page is materialized only
                // to simulate the truncation below.
                let mut owned = None;
                self.inner.respond(request, &mut |view| owned = Some(view.to_owned_page()))?;
                let page: ExtractedPage = owned.expect("respond visits on success");
                self.state.corrupt.fetch_add(1, Ordering::Relaxed);
                // Materialize the page as wire bytes and truncate them, as a
                // flaky connection would. The extractor must reject the
                // damage; either way the crawler sees a corrupt page. (A cut
                // landing after a complete record can still parse — which is
                // precisely why the error, not the parse, is authoritative.)
                let wire = page_to_wire(&page);
                let mut cut = wire.len() * 2 / 3;
                while cut > 0 && !wire.is_char_boundary(cut) {
                    cut -= 1;
                }
                let _ = parse_page(&wire[..cut]);
                Err(CrawlError::CorruptPage)
            }
            Some(FaultKind::Panic) => {
                self.state.panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: worker-killing panic at request {request_no}");
            }
        }
    }

    fn interface(&self) -> &InterfaceSpec {
        self.inner.interface()
    }

    fn rounds_used(&self) -> u64 {
        self.inner.rounds_used() + self.absorbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ProberMode;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::{Query, WebDbServer};

    fn server() -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn a2() -> Query {
        Query::ByString { attr: "A".into(), value: "a2".into() }
    }

    /// Fetches one page as an owned value through the `respond` envelope —
    /// the test-side convenience the deprecated `query_page` shim used to
    /// provide.
    fn query_page<S: DataSource>(
        s: &S,
        query: &Query,
        page: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let mut owned = None;
        s.respond(&crate::source::SourceRequest::new(query, page, prober), &mut |view| {
            owned = Some(view.to_owned_page())
        })?;
        Ok(owned.expect("respond visits exactly once on success"))
    }

    #[test]
    fn plan_builders_compose() {
        let plan = FaultPlan::new().burst(3, 2).stall_at(7, 5).corrupt_at(9).panic_at(11);
        assert_eq!(plan.event_at(3), Some(FaultKind::Transient));
        assert_eq!(plan.event_at(4), Some(FaultKind::Transient));
        assert_eq!(plan.event_at(5), None);
        assert_eq!(plan.event_at(7), Some(FaultKind::Stall { rounds: 5 }));
        assert_eq!(plan.event_at(9), Some(FaultKind::Corrupt));
        assert_eq!(plan.event_at(11), Some(FaultKind::Panic));
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let kinds = [FaultKind::Transient, FaultKind::Corrupt];
        let a = FaultPlan::seeded(42, 1000, 0.2, &kinds);
        let b = FaultPlan::seeded(42, 1000, 0.2, &kinds);
        let c = FaultPlan::seeded(43, 1000, 0.2, &kinds);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        let n = a.len() as f64;
        assert!((100.0..400.0).contains(&n), "rate 0.2 over 1000 ≈ 200 events, got {n}");
        assert!(FaultPlan::seeded(1, 100, 0.0, &kinds).is_empty());
        assert!(FaultPlan::seeded(1, 100, 0.5, &[]).is_empty());
    }

    #[test]
    fn each_kind_surfaces_as_its_error() {
        let s = FaultPlanSource::new(
            server(),
            FaultPlan::new().transient_at(1).stall_at(2, 7).corrupt_at(3),
        );
        assert_eq!(query_page(&s, &a2(), 0, ProberMode::InProcess), Err(CrawlError::Transient));
        assert_eq!(
            query_page(&s, &a2(), 0, ProberMode::InProcess),
            Err(CrawlError::Stalled { wasted_rounds: 7 })
        );
        assert_eq!(query_page(&s, &a2(), 0, ProberMode::InProcess), Err(CrawlError::CorruptPage));
        assert!(query_page(&s, &a2(), 0, ProberMode::InProcess).is_ok());
        let tally = s.tally();
        assert_eq!((tally.transient, tally.stalls, tally.corrupt, tally.panics), (1, 1, 1, 0));
        assert_eq!(tally.total(), 3);
    }

    #[test]
    fn billing_splits_absorbed_and_served_faults() {
        // Request 1 transient (absorbed: billed by wrapper), request 2
        // corrupt (served: billed by inner), request 3 clean.
        let s = FaultPlanSource::new(server(), FaultPlan::new().transient_at(1).corrupt_at(2));
        let _ = query_page(&s, &a2(), 0, ProberMode::InProcess);
        let _ = query_page(&s, &a2(), 0, ProberMode::InProcess);
        let _ = query_page(&s, &a2(), 0, ProberMode::InProcess);
        assert_eq!(s.inner().rounds_used(), 2, "corrupt + clean reached the server");
        assert_eq!(DataSource::rounds_used(&s), 3, "every request is billed exactly once");
    }

    #[test]
    fn clones_share_the_schedule_position() {
        let s =
            FaultPlanSource::new(std::sync::Arc::new(server()), FaultPlan::new().transient_at(2));
        let s2 = s.clone();
        assert!(query_page(&s, &a2(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(
            query_page(&s2, &a2(), 0, ProberMode::InProcess),
            Err(CrawlError::Transient),
            "the clone's request is number 2 in the shared stream"
        );
        assert_eq!(s.requests_seen(), 2);
        assert_eq!(s.tally().transient, 1);
    }

    #[test]
    fn panic_fault_panics_once_then_schedule_moves_on() {
        let s = FaultPlanSource::new(std::sync::Arc::new(server()), FaultPlan::new().panic_at(1));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = query_page(&s, &a2(), 0, ProberMode::InProcess);
        }));
        assert!(caught.is_err(), "the scheduled panic must fire");
        assert_eq!(s.tally().panics, 1);
        // The stream advanced past the panic: the next request succeeds.
        assert!(query_page(&s, &a2(), 0, ProberMode::InProcess).is_ok());
    }
}
