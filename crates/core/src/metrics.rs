//! The metrics registry: the single source of truth behind every report.
//!
//! A [`MetricsRegistry`] is an [`EventSink`](crate::events::EventSink) that
//! folds the [`CrawlEvent`] stream into counters, the
//! [`CrawlTrace`], and the final verdict. Nothing else in the engine keeps
//! tallies: [`CrawlReport`], `FleetReport::health` and the trace are all
//! *derived* from a registry, so a figure in a report is — by construction —
//! a fold over events that actually happened. [`replay_report`] runs the
//! same fold over a recorded stream (e.g. a `dwc crawl --events` JSONL
//! file), rebuilding the exact report the original crawl returned.

use crate::events::{BreakerPhase, CrawlEvent, EventSink, StopReason};
use crate::tenant::UsageLedger;
use crate::trace::{CrawlTrace, TracePoint};
use std::collections::BTreeMap;

/// Summary of a finished crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlReport {
    /// Queries issued.
    pub queries: u64,
    /// Page requests issued (including failed attempts). Matches the
    /// source-side request count attributable to this crawler.
    pub rounds: u64,
    /// Simulated rounds spent waiting in retry backoff.
    pub backoff_rounds: u64,
    /// Simulated rounds lost to source-side latency stalls.
    pub stall_rounds: u64,
    /// Records harvested into `DB_local`.
    pub records: u64,
    /// Queries cut short by the abortion heuristics.
    pub aborted_queries: u64,
    /// Transient failures encountered (and retried).
    pub transient_failures: u64,
    /// Pages that arrived truncated or otherwise corrupt (subset of
    /// `transient_failures`).
    pub corrupt_pages: u64,
    /// Attempts put back on the frontier after failing entirely on
    /// transient-class errors.
    pub requeued_queries: u64,
    /// Pages the source served from its render cache (overlapping fleet
    /// workers re-requesting the same `(query, page)`); each such round was
    /// still billed per Definition 2.3.
    pub page_cache_hits: u64,
    /// Periodic checkpoints persisted during the crawl.
    pub checkpoints_written: u64,
    /// Periodic checkpoint saves that failed (the crawl continues; the
    /// previous on-disk generation remains valid).
    pub checkpoint_failures: u64,
    /// Why the crawl stopped.
    pub stop: StopReason,
    /// Per-query progress trace.
    pub trace: CrawlTrace,
    /// Final true coverage, when the target size was known.
    pub final_coverage: Option<f64>,
}

impl CrawlReport {
    /// Total rounds billed against budgets: requests plus backoff waits
    /// plus stall waits.
    pub fn elapsed_rounds(&self) -> u64 {
        self.rounds + self.backoff_rounds + self.stall_rounds
    }
}

/// Folds a [`CrawlEvent`] stream into every figure a report surfaces.
///
/// One registry backs one crawl (or, fleet-side, one job's supervision
/// stream). It is `Clone` so supervisors can snapshot it across worker
/// restarts.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    rounds: u64,
    backoff_rounds: u64,
    stall_rounds: u64,
    queries: u64,
    records: u64,
    aborted_queries: u64,
    transient_failures: u64,
    corrupt_pages: u64,
    requeued_queries: u64,
    page_cache_hits: u64,
    checkpoints_written: u64,
    checkpoint_failures: u64,
    fault_streak: u32,
    breaker_trips: u64,
    breaker_recoveries: u64,
    worker_restarts: u32,
    abandoned: bool,
    slices_scheduled: u64,
    slices_completed: u64,
    rounds_granted: u64,
    rounds_executed: u64,
    steals: u64,
    per_worker_slices: Vec<u64>,
    requests_enqueued: u64,
    requests_shed: u64,
    requests_cancelled: u64,
    requests_completed: u64,
    frames_dropped: u64,
    frames_retransmitted: u64,
    hedged_requests: u64,
    service_restarts: u64,
    queue_depth_sum: u64,
    queue_depth_max: u32,
    latency_max_us: u64,
    /// Log2-bucketed completion latencies: bucket 0 holds `0 µs`, bucket
    /// `i ≥ 1` holds `[2^(i−1), 2^i)` µs. Allocated on first use so crawls
    /// that never cross a service boundary pay nothing.
    latency_buckets: Vec<u64>,
    /// Tenant each fleet job runs under (tenanted jobs only), learned from
    /// `JobAttached` / `SliceCompleted` tags.
    job_tenant: BTreeMap<u32, u32>,
    /// Per-job cumulative billed rounds, folded as a running *maximum* over
    /// the `rounds`/`total` fields of `JobAttached` / `SliceCompleted` /
    /// `JobDetached`. Maxima (not slice-delta sums) keep the fold exact
    /// under worker panics, restarts, and checkpoint resumes.
    job_rounds: BTreeMap<u32, u64>,
    /// Per-job cumulative page-request rounds, folded like `job_rounds`.
    job_pages: BTreeMap<u32, u64>,
    /// Per-tenant admission / shed / preemption / retransmit event counts.
    tenant_admitted: BTreeMap<u32, u64>,
    tenant_sheds: BTreeMap<u32, u64>,
    tenant_preempted: BTreeMap<u32, u64>,
    tenant_retransmits: BTreeMap<u32, u64>,
    trace: CrawlTrace,
    stop: Option<StopReason>,
    final_coverage: Option<f64>,
}

/// Folds `value` into `map[key]` as a running maximum.
fn max_fold(map: &mut BTreeMap<u32, u64>, key: u32, value: u64) {
    let slot = map.entry(key).or_insert(0);
    *slot = (*slot).max(value);
}

/// Log2 bucket index for a microsecond latency (0 → bucket 0).
fn latency_bucket(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        64 - us.leading_zeros() as usize
    }
}

/// Upper bound (representative value) of a log2 latency bucket — the
/// pessimistic edge, which is the honest way to quote a tail percentile
/// from a histogram.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl MetricsRegistry {
    /// A registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event into the registry. This is the *only* place any
    /// crawl counter changes.
    pub fn record(&mut self, event: &CrawlEvent) {
        match *event {
            CrawlEvent::QueryPlanned { .. } => {}
            CrawlEvent::PageRequested => self.rounds += 1,
            CrawlEvent::PageFetched { new, .. } => {
                self.records += new;
                self.fault_streak = 0;
            }
            CrawlEvent::TransientFailure { corrupt } => {
                self.transient_failures += 1;
                self.corrupt_pages += u64::from(corrupt);
                self.fault_streak = self.fault_streak.saturating_add(1);
            }
            CrawlEvent::BackoffBilled { rounds } => self.backoff_rounds += rounds,
            CrawlEvent::StallBilled { rounds } => self.stall_rounds += rounds,
            CrawlEvent::QueryAborted => self.aborted_queries += 1,
            CrawlEvent::QueryCompleted => {
                self.queries += 1;
                self.trace.push(TracePoint {
                    rounds: self.rounds,
                    queries: self.queries,
                    records: self.records,
                });
            }
            CrawlEvent::PageCacheHit => self.page_cache_hits += 1,
            CrawlEvent::QueryRequeued { .. } => self.requeued_queries += 1,
            CrawlEvent::CheckpointWritten { .. } => self.checkpoints_written += 1,
            CrawlEvent::CheckpointFailed => self.checkpoint_failures += 1,
            CrawlEvent::CrawlResumed { rounds, queries, records } => {
                self.rounds = rounds;
                self.queries = queries;
                self.records = records;
                self.trace.push(TracePoint { rounds, queries, records });
            }
            CrawlEvent::CrawlFinished { stop, coverage } => {
                self.stop = Some(stop);
                self.final_coverage = coverage;
            }
            CrawlEvent::BreakerTransition { from, to, .. } => {
                if to == BreakerPhase::Open {
                    self.breaker_trips += 1;
                }
                if from == BreakerPhase::HalfOpen && to == BreakerPhase::Closed {
                    self.breaker_recoveries += 1;
                }
            }
            CrawlEvent::WorkerRestarted { .. } => {
                self.worker_restarts = self.worker_restarts.saturating_add(1);
            }
            CrawlEvent::JobAbandoned { .. } => self.abandoned = true,
            CrawlEvent::SliceScheduled { rounds, .. } => {
                self.slices_scheduled += 1;
                self.rounds_granted += rounds;
            }
            CrawlEvent::SliceCompleted { job, worker, rounds, stolen, tenant, total, pages } => {
                self.slices_completed += 1;
                self.rounds_executed += rounds;
                self.steals += u64::from(stolen);
                let idx = worker as usize;
                if self.per_worker_slices.len() <= idx {
                    self.per_worker_slices.resize(idx + 1, 0);
                }
                self.per_worker_slices[idx] += 1;
                if let Some(t) = tenant {
                    self.job_tenant.insert(job, t);
                    max_fold(&mut self.job_rounds, job, total);
                    max_fold(&mut self.job_pages, job, pages);
                }
            }
            CrawlEvent::JobAttached { job, tenant, rounds, pages } => {
                if let Some(t) = tenant {
                    self.job_tenant.insert(job, t);
                    max_fold(&mut self.job_rounds, job, rounds);
                    max_fold(&mut self.job_pages, job, pages);
                }
            }
            CrawlEvent::JobDetached { job, rounds, pages } => {
                if self.job_tenant.contains_key(&job) {
                    max_fold(&mut self.job_rounds, job, rounds);
                    max_fold(&mut self.job_pages, job, pages);
                }
            }
            CrawlEvent::TenantPreempted { tenant, .. } => {
                *self.tenant_preempted.entry(tenant).or_insert(0) += 1;
            }
            CrawlEvent::TenantAdmitted { tenant } => {
                *self.tenant_admitted.entry(tenant).or_insert(0) += 1;
            }
            CrawlEvent::TenantThrottled { tenant } => {
                *self.tenant_sheds.entry(tenant).or_insert(0) += 1;
            }
            CrawlEvent::RequestEnqueued { depth } => {
                self.requests_enqueued += 1;
                self.queue_depth_sum += u64::from(depth);
                self.queue_depth_max = self.queue_depth_max.max(depth);
            }
            CrawlEvent::RequestShed => self.requests_shed += 1,
            CrawlEvent::RequestCancelled => self.requests_cancelled += 1,
            CrawlEvent::RequestCompleted { latency_us } => {
                self.requests_completed += 1;
                self.latency_max_us = self.latency_max_us.max(latency_us);
                if self.latency_buckets.is_empty() {
                    self.latency_buckets = vec![0; 65];
                }
                self.latency_buckets[latency_bucket(latency_us)] += 1;
            }
            CrawlEvent::FrameDropped { .. } => self.frames_dropped += 1,
            CrawlEvent::FrameRetransmitted { tenant, .. } => {
                self.frames_retransmitted += 1;
                if let Some(t) = tenant {
                    *self.tenant_retransmits.entry(t).or_insert(0) += 1;
                }
            }
            CrawlEvent::Hedged { .. } => self.hedged_requests += 1,
            CrawlEvent::ServiceRestarted => self.service_restarts += 1,
        }
    }

    /// Page requests billed so far (including failed attempts).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Simulated rounds spent waiting in retry backoff so far.
    pub fn backoff_rounds(&self) -> u64 {
        self.backoff_rounds
    }

    /// Simulated rounds lost to source-side latency stalls so far.
    pub fn stall_rounds(&self) -> u64 {
        self.stall_rounds
    }

    /// Rounds billed against budgets: requests plus backoff waits plus
    /// stall waits (Definition 2.3 bills time, not just served pages).
    pub fn elapsed_rounds(&self) -> u64 {
        self.rounds + self.backoff_rounds + self.stall_rounds
    }

    /// Queries completed so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Records harvested so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Consecutive transient-class failures since the last intact page.
    /// Supervisors sample this at slice boundaries to drive per-source
    /// circuit breakers.
    pub fn fault_streak(&self) -> u32 {
        self.fault_streak
    }

    /// Pages served from the source's render cache so far.
    pub fn page_cache_hits(&self) -> u64 {
        self.page_cache_hits
    }

    /// Periodic checkpoints persisted so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Worker restarts observed so far (fleet supervision stream).
    pub fn worker_restarts(&self) -> u32 {
        self.worker_restarts
    }

    /// The per-query progress trace.
    pub fn trace(&self) -> &CrawlTrace {
        &self.trace
    }

    /// A [`CrawlEvent::CrawlResumed`] snapshot carrying this registry's
    /// resumable counters, or `None` when nothing has happened yet. Sinks
    /// attached mid-crawl receive this first so their streams replay to the
    /// same totals.
    pub fn snapshot_event(&self) -> Option<CrawlEvent> {
        if self.rounds == 0 && self.queries == 0 && self.records == 0 {
            return None;
        }
        Some(CrawlEvent::CrawlResumed {
            rounds: self.rounds,
            queries: self.queries,
            records: self.records,
        })
    }

    /// Derives the final [`CrawlReport`]. `None` until a
    /// [`CrawlEvent::CrawlFinished`] has been recorded — a report needs a
    /// verdict.
    pub fn report(&self) -> Option<CrawlReport> {
        Some(CrawlReport {
            queries: self.queries,
            rounds: self.rounds,
            backoff_rounds: self.backoff_rounds,
            stall_rounds: self.stall_rounds,
            records: self.records,
            aborted_queries: self.aborted_queries,
            transient_failures: self.transient_failures,
            corrupt_pages: self.corrupt_pages,
            requeued_queries: self.requeued_queries,
            page_cache_hits: self.page_cache_hits,
            checkpoints_written: self.checkpoints_written,
            checkpoint_failures: self.checkpoint_failures,
            stop: self.stop?,
            trace: self.trace.clone(),
            final_coverage: self.final_coverage,
        })
    }

    /// Derives a fleet job's [`crate::health::JobHealth`] from the
    /// supervision events recorded here.
    pub fn job_health(&self) -> crate::health::JobHealth {
        crate::health::JobHealth {
            breaker_trips: self.breaker_trips,
            breaker_recoveries: self.breaker_recoveries,
            worker_restarts: self.worker_restarts,
            abandoned: self.abandoned,
        }
    }

    /// Derives the scheduler section of a fleet report from the
    /// [`CrawlEvent::SliceScheduled`] / [`CrawlEvent::SliceCompleted`]
    /// stream recorded here. `workers` reports the pool size the fleet ran
    /// with (the event stream alone can only prove which workers completed
    /// at least one slice, so the count is supplied by the caller);
    /// `per_worker_slices` is padded out to that size.
    pub fn scheduler_stats(&self, workers: u32) -> crate::sched::SchedulerStats {
        let mut per_worker_slices = self.per_worker_slices.clone();
        if per_worker_slices.len() < workers as usize {
            per_worker_slices.resize(workers as usize, 0);
        }
        crate::sched::SchedulerStats {
            workers,
            slices_scheduled: self.slices_scheduled,
            slices_completed: self.slices_completed,
            rounds_granted: self.rounds_granted,
            rounds_executed: self.rounds_executed,
            steals: self.steals,
            per_worker_slices,
        }
    }

    /// Derives the per-tenant [`UsageLedger`]s from the tenant-tagged
    /// events recorded here, sorted by tenant id. Empty for a tenant-blind
    /// stream.
    ///
    /// A tenant's `rounds`/`pages` are the sums of its jobs' cumulative
    /// maxima (see the field docs), so — because the fleet coordinator
    /// bills budgets from the same per-job maxima — the `rounds` of all
    /// ledgers in a fully-tenanted fleet sum *exactly* to
    /// `FleetReport::total_rounds`, faults and restarts included.
    pub fn usage_ledgers(&self) -> Vec<(u32, UsageLedger)> {
        let mut ids: std::collections::BTreeSet<u32> = self.job_tenant.values().copied().collect();
        ids.extend(self.tenant_admitted.keys().copied());
        ids.extend(self.tenant_sheds.keys().copied());
        ids.extend(self.tenant_preempted.keys().copied());
        ids.extend(self.tenant_retransmits.keys().copied());
        ids.into_iter()
            .map(|t| {
                let mut ledger = UsageLedger {
                    admitted: self.tenant_admitted.get(&t).copied().unwrap_or(0),
                    sheds: self.tenant_sheds.get(&t).copied().unwrap_or(0),
                    preempted: self.tenant_preempted.get(&t).copied().unwrap_or(0),
                    retransmits: self.tenant_retransmits.get(&t).copied().unwrap_or(0),
                    ..UsageLedger::default()
                };
                for (&job, &tenant) in &self.job_tenant {
                    if tenant == t {
                        ledger.rounds += self.job_rounds.get(&job).copied().unwrap_or(0);
                        ledger.pages += self.job_pages.get(&job).copied().unwrap_or(0);
                    }
                }
                (t, ledger)
            })
            .collect()
    }

    /// Nearest-rank percentile over the log2 latency histogram: the upper
    /// bound of the bucket containing the `⌈q·n⌉`-th smallest completion.
    fn latency_percentile(&self, q: f64) -> u64 {
        if self.requests_completed == 0 {
            return 0;
        }
        let rank = ((q * self.requests_completed as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The top bucket's upper bound is unbounded; quote the
                // largest latency actually observed instead.
                return bucket_upper_bound(idx).min(self.latency_max_us);
            }
        }
        self.latency_max_us
    }

    /// Derives the serving-tier section of a report from the
    /// [`CrawlEvent::RequestEnqueued`] / `RequestShed` / `RequestCancelled` /
    /// `RequestCompleted` stream recorded here. All-zero when the crawl never
    /// crossed a service boundary.
    pub fn service_report(&self) -> crate::serve::ServiceReport {
        let enq = self.requests_enqueued;
        crate::serve::ServiceReport {
            enqueued: enq,
            completed: self.requests_completed,
            shed: self.requests_shed,
            cancelled: self.requests_cancelled,
            max_queue_depth: self.queue_depth_max,
            mean_queue_depth: if enq == 0 { 0.0 } else { self.queue_depth_sum as f64 / enq as f64 },
            p50_latency_us: self.latency_percentile(0.50),
            p95_latency_us: self.latency_percentile(0.95),
            p99_latency_us: self.latency_percentile(0.99),
            max_latency_us: self.latency_max_us,
            frames_dropped: self.frames_dropped,
            retransmitted: self.frames_retransmitted,
            hedged: self.hedged_requests,
            restarts: self.service_restarts,
            breaker_trips: self.breaker_trips,
            breaker_recoveries: self.breaker_recoveries,
        }
    }
}

impl EventSink for MetricsRegistry {
    fn emit(&mut self, event: &CrawlEvent) {
        self.record(event);
    }
}

/// Replays a recorded event stream through a fresh registry and derives the
/// report. Returns `None` when the stream has no
/// [`CrawlEvent::CrawlFinished`] (an unfinished or truncated stream).
///
/// For any stream recorded by a sink attached before the crawl's first
/// event, the result is identical to the report the crawl itself returned.
pub fn replay_report<'a, I: IntoIterator<Item = &'a CrawlEvent>>(events: I) -> Option<CrawlReport> {
    let mut registry = MetricsRegistry::new();
    for event in events {
        registry.record(event);
    }
    registry.report()
}

/// Replays a recorded stream through a fresh registry and derives its
/// per-tenant usage ledgers — the same fold the fleet runs live, so
/// `replay_usage(&report.events)` reproduces `FleetReport::usage`
/// bit-for-bit for any fleet run.
pub fn replay_usage<'a, I: IntoIterator<Item = &'a CrawlEvent>>(
    events: I,
) -> Vec<(u32, UsageLedger)> {
    let mut registry = MetricsRegistry::new();
    for event in events {
        registry.record(event);
    }
    registry.usage_ledgers()
}

/// Replays a recorded stream through a fresh registry and derives its
/// serving-tier report — the same fold [`crate::serve::SourceService`] runs
/// live, so `replay_service_report(recorded) == service.service_report()`
/// for any stream captured by a sink attached before the first request.
pub fn replay_service_report<'a, I: IntoIterator<Item = &'a CrawlEvent>>(
    events: I,
) -> crate::serve::ServiceReport {
    let mut registry = MetricsRegistry::new();
    for event in events {
        registry.record(event);
    }
    registry.service_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_folds_the_cost_model() {
        let mut m = MetricsRegistry::new();
        for ev in [
            CrawlEvent::PageRequested,
            CrawlEvent::TransientFailure { corrupt: false },
            CrawlEvent::BackoffBilled { rounds: 2 },
            CrawlEvent::PageRequested,
            CrawlEvent::TransientFailure { corrupt: true },
            CrawlEvent::StallBilled { rounds: 5 },
            CrawlEvent::PageRequested,
            CrawlEvent::PageFetched { returned: 10, new: 7 },
            CrawlEvent::QueryCompleted,
        ] {
            m.record(&ev);
        }
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.backoff_rounds(), 2);
        assert_eq!(m.stall_rounds(), 5);
        assert_eq!(m.elapsed_rounds(), 10);
        assert_eq!(m.records(), 7);
        assert_eq!(m.queries(), 1);
        assert_eq!(m.fault_streak(), 0, "an intact page resets the streak");
        let r = m.report();
        assert!(r.is_none(), "no CrawlFinished yet");
        m.record(&CrawlEvent::CrawlFinished {
            stop: StopReason::FrontierExhausted,
            coverage: Some(1.0),
        });
        let r = m.report().unwrap();
        assert_eq!(r.transient_failures, 2);
        assert_eq!(r.corrupt_pages, 1);
        assert_eq!(r.elapsed_rounds(), 10);
        assert_eq!(r.trace.points(), &[TracePoint { rounds: 3, queries: 1, records: 7 }]);
    }

    #[test]
    fn fault_streak_counts_consecutive_failures() {
        let mut m = MetricsRegistry::new();
        m.record(&CrawlEvent::TransientFailure { corrupt: false });
        m.record(&CrawlEvent::TransientFailure { corrupt: false });
        assert_eq!(m.fault_streak(), 2);
        m.record(&CrawlEvent::PageFetched { returned: 1, new: 1 });
        assert_eq!(m.fault_streak(), 0);
    }

    #[test]
    fn resume_seeds_counters_and_trace() {
        let mut m = MetricsRegistry::new();
        m.record(&CrawlEvent::CrawlResumed { rounds: 40, queries: 3, records: 25 });
        assert_eq!(m.rounds(), 40);
        assert_eq!(m.queries(), 3);
        assert_eq!(m.records(), 25);
        assert_eq!(m.trace().points().len(), 1, "resume contributes the initial trace point");
        assert_eq!(
            m.snapshot_event(),
            Some(CrawlEvent::CrawlResumed { rounds: 40, queries: 3, records: 25 })
        );
        assert_eq!(MetricsRegistry::new().snapshot_event(), None);
    }

    #[test]
    fn breaker_transitions_fold_into_job_health() {
        let mut m = MetricsRegistry::new();
        let trip = CrawlEvent::BreakerTransition {
            job: 0,
            from: BreakerPhase::Closed,
            to: BreakerPhase::Open,
        };
        let probe = CrawlEvent::BreakerTransition {
            job: 0,
            from: BreakerPhase::Open,
            to: BreakerPhase::HalfOpen,
        };
        let recover = CrawlEvent::BreakerTransition {
            job: 0,
            from: BreakerPhase::HalfOpen,
            to: BreakerPhase::Closed,
        };
        let retrip = CrawlEvent::BreakerTransition {
            job: 0,
            from: BreakerPhase::HalfOpen,
            to: BreakerPhase::Open,
        };
        for ev in
            [trip, probe, recover, trip, probe, retrip, CrawlEvent::WorkerRestarted { job: 0 }]
        {
            m.record(&ev);
        }
        let h = m.job_health();
        assert_eq!(h.breaker_trips, 3, "every entry into Open is a trip");
        assert_eq!(h.breaker_recoveries, 1, "only HalfOpen→Closed recovers");
        assert_eq!(h.worker_restarts, 1);
        assert!(!h.abandoned);
        m.record(&CrawlEvent::JobAbandoned { job: 0 });
        assert!(m.job_health().abandoned);
    }

    #[test]
    fn scheduler_events_fold_into_stats() {
        let mut m = MetricsRegistry::new();
        for ev in [
            CrawlEvent::SliceScheduled { job: 0, rounds: 100 },
            CrawlEvent::SliceScheduled { job: 1, rounds: 50 },
            CrawlEvent::SliceCompleted {
                job: 0,
                worker: 2,
                rounds: 97,
                stolen: true,
                tenant: None,
                total: 97,
                pages: 95,
            },
            CrawlEvent::SliceCompleted {
                job: 1,
                worker: 0,
                rounds: 50,
                stolen: false,
                tenant: None,
                total: 50,
                pages: 50,
            },
        ] {
            m.record(&ev);
        }
        let s = m.scheduler_stats(4);
        assert_eq!(s.workers, 4);
        assert_eq!(s.slices_scheduled, 2);
        assert_eq!(s.slices_completed, 2);
        assert_eq!(s.rounds_granted, 150);
        assert_eq!(s.rounds_executed, 147);
        assert_eq!(s.steals, 1);
        assert_eq!(s.per_worker_slices, vec![1, 0, 1, 0], "padded to the pool size");
    }

    #[test]
    fn tenant_events_fold_into_usage_ledgers() {
        let mut m = MetricsRegistry::new();
        assert!(m.usage_ledgers().is_empty(), "tenant-blind streams report no usage");
        let events = [
            // Job 0 (tenant 1) resumes from a checkpoint with 40 rounds billed.
            CrawlEvent::JobAttached { job: 0, tenant: Some(1), rounds: 40, pages: 38 },
            CrawlEvent::JobAttached { job: 1, tenant: Some(2), rounds: 0, pages: 0 },
            CrawlEvent::SliceCompleted {
                job: 0,
                worker: 0,
                rounds: 10,
                stolen: false,
                tenant: Some(1),
                total: 50,
                pages: 47,
            },
            // A panic + restart replays job 1's slice: the re-attach carries
            // the checkpointed totals, so the max-fold stays exact.
            CrawlEvent::JobAttached { job: 1, tenant: Some(2), rounds: 5, pages: 5 },
            CrawlEvent::SliceCompleted {
                job: 1,
                worker: 1,
                rounds: 7,
                stolen: true,
                tenant: Some(2),
                total: 12,
                pages: 12,
            },
            CrawlEvent::TenantPreempted { tenant: 2, job: 1 },
            CrawlEvent::TenantAdmitted { tenant: 1 },
            CrawlEvent::TenantAdmitted { tenant: 1 },
            CrawlEvent::TenantThrottled { tenant: 1 },
            CrawlEvent::FrameRetransmitted { request: 9, tenant: Some(2) },
            CrawlEvent::FrameRetransmitted { request: 10, tenant: None },
            CrawlEvent::JobDetached { job: 0, rounds: 50, pages: 47 },
            CrawlEvent::JobDetached { job: 1, rounds: 12, pages: 12 },
        ];
        for ev in &events {
            m.record(ev);
        }
        let usage = m.usage_ledgers();
        assert_eq!(usage.len(), 2);
        assert_eq!(
            usage[0],
            (
                1,
                UsageLedger {
                    rounds: 50,
                    pages: 47,
                    admitted: 2,
                    sheds: 1,
                    retransmits: 0,
                    preempted: 0,
                }
            )
        );
        assert_eq!(
            usage[1],
            (
                2,
                UsageLedger {
                    rounds: 12,
                    pages: 12,
                    admitted: 0,
                    sheds: 0,
                    retransmits: 1,
                    preempted: 1,
                }
            )
        );
        assert_eq!(replay_usage(&events), usage, "the live fold and the replay agree");
    }

    #[test]
    fn service_events_fold_into_the_service_report() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.service_report(), crate::serve::ServiceReport::default());
        let events = [
            CrawlEvent::RequestEnqueued { depth: 1 },
            CrawlEvent::RequestCompleted { latency_us: 3 },
            CrawlEvent::RequestEnqueued { depth: 3 },
            CrawlEvent::RequestShed,
            CrawlEvent::RequestEnqueued { depth: 2 },
            CrawlEvent::RequestCancelled,
            CrawlEvent::RequestCompleted { latency_us: 900 },
        ];
        for ev in &events {
            m.record(ev);
        }
        let s = m.service_report();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert!((s.mean_queue_depth - 2.0).abs() < 1e-9);
        assert_eq!(s.p50_latency_us, 3, "rank 1 of 2 lands in the 2–3 µs bucket");
        assert_eq!(s.p99_latency_us, 900, "tail quote is clamped to the observed max");
        assert_eq!(s.max_latency_us, 900);
        assert!((s.shed_rate() - 0.25).abs() < 1e-9, "1 shed of 4 offered");
        assert_eq!(replay_service_report(&events), s, "the live fold and the replay agree");
    }

    #[test]
    fn latency_percentiles_are_monotone_and_zero_safe() {
        let mut m = MetricsRegistry::new();
        m.record(&CrawlEvent::RequestCompleted { latency_us: 0 });
        let s = m.service_report();
        assert_eq!((s.p50_latency_us, s.p99_latency_us, s.max_latency_us), (0, 0, 0));
        for us in [10, 100, 1_000, 10_000, 100_000] {
            m.record(&CrawlEvent::RequestCompleted { latency_us: us });
        }
        let s = m.service_report();
        assert!(s.p50_latency_us <= s.p95_latency_us);
        assert!(s.p95_latency_us <= s.p99_latency_us);
        assert!(s.p99_latency_us <= s.max_latency_us);
        assert_eq!(s.max_latency_us, 100_000);
    }

    #[test]
    fn replay_is_a_pure_fold() {
        let events = vec![
            CrawlEvent::CrawlResumed { rounds: 10, queries: 1, records: 4 },
            CrawlEvent::PageRequested,
            CrawlEvent::PageFetched { returned: 3, new: 2 },
            CrawlEvent::QueryCompleted,
            CrawlEvent::CrawlFinished { stop: StopReason::RoundBudget, coverage: None },
        ];
        let a = replay_report(&events).unwrap();
        let b = replay_report(&events).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rounds, 11);
        assert_eq!(a.records, 6);
        assert_eq!(a.stop, StopReason::RoundBudget);
        assert_eq!(replay_report(&events[..4]), None, "truncated stream has no verdict");
    }
}
