//! The query–harvest–decompose crawl loop (paper §1, §2.5).
//!
//! "It starts with some seed queries prepared in the form of attribute value
//! pairs … automatically queries the target data source … harvests the data
//! records from the returned pages … populates the extracted records to its
//! local database and decomposes these records into attribute values, which
//! are stored as candidates for future query formulation. This process is
//! repeated until all the possible queries are issued or some stopping
//! criterion is met."
//!
//! The crawler talks to its source exclusively through the [`DataSource`]
//! trait: queries go out as attribute-name + value-string form fills
//! ([`dwc_server::Query::ByString`]); results come back as extracted pages
//! (attribute names + value strings), materialized per [`ProberMode`].
//! Every page request — including failed ones — costs one communication
//! round (Definition 2.3); retry backoff waits are billed additionally as
//! simulated rounds ([`RetryPolicy`]).

use crate::abort::{AbortPolicy, AbortState};
use crate::config::{ConfigError, RetryPolicy};
use crate::extract::ExtractedRecord;
use crate::policy::SelectionPolicy;
use crate::source::{CrawlError, DataSource};
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use crate::trace::{CrawlTrace, TracePoint};
use dwc_model::ValueId;
use dwc_server::Query;

pub use crate::source::ProberMode;

/// How queries are submitted to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Fill the value into its attribute's structured form field
    /// (`Query::ByString`). Requires the attribute to be queriable.
    #[default]
    Structured,
    /// Throw the bare value string into the keyword box (`Query::Keyword`)
    /// and "rely on the end site's query processing mechanism to decide which
    /// column that value should actually match" (§2.2). Requires the
    /// interface to advertise keyword search; makes every discovered value a
    /// candidate, even from attributes without a form field.
    Keyword,
    /// Multi-attribute form fill: the selected candidate value is combined
    /// with its most co-occurring locally-known partner values from `arity−1`
    /// *other* attributes into a [`Query::Conjunctive`]. This is the query
    /// class the paper defers to future work; restrictive sources
    /// (`InterfaceSpec::requiring_attrs`) only accept it. Seeds must be
    /// provided as whole groups via [`Crawler::add_seed_group`].
    Conjunctive {
        /// Number of equality predicates per query (≥ 2).
        arity: usize,
    },
}

/// Crawl limits and knobs.
///
/// Prefer [`CrawlConfig::builder`], which validates parameters at build
/// time; the struct literal form remains available for tests that want an
/// intentionally odd configuration.
///
/// Note the retry default: [`RetryPolicy::default`] has `max_retries: 0`, so
/// a bare `CrawlConfig` **fails fast on the first transient error** of a
/// page (the total-failure requeue path is the only second chance). Any
/// crawl against a source that can throttle should set
/// [`CrawlConfigBuilder::max_retries`] (fleets apply
/// [`crate::fleet::FleetConfig::default_retry`] automatically).
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Stop after this many elapsed rounds — page requests plus retry
    /// backoff waits (Figures 5–6 use 10,000).
    pub max_rounds: Option<u64>,
    /// Stop after this many queries.
    pub max_queries: Option<u64>,
    /// Stop when true coverage reaches this fraction (requires
    /// `known_target_size`; Figure 3 uses 0.9).
    pub target_coverage: Option<f64>,
    /// The target's true size, when the harness knows it (controlled
    /// experiments).
    pub known_target_size: Option<usize>,
    /// Per-query abortion heuristics (§3.4).
    pub abort: AbortPolicy,
    /// Transient-failure retry schedule (each attempt costs a round; waits
    /// between attempts cost backoff rounds).
    pub retry: RetryPolicy,
    /// How many times a query that failed *entirely* on transient-class
    /// errors (zero pages retrieved) is put back on the frontier for a later
    /// attempt, per value. Keeps a burst of failures from permanently losing
    /// the records behind the affected candidates.
    pub max_requeues: u32,
    /// Prober mode.
    pub prober: ProberMode,
    /// Query submission mode (structured form fill vs keyword box).
    pub query_mode: QueryMode,
    /// Where periodic checkpoints are persisted. `None` disables periodic
    /// checkpointing (manual [`Crawler::checkpoint`] still works).
    pub checkpoint_store: Option<crate::store::CheckpointStore>,
    /// Snapshot cadence in completed queries, when a store is set; `None`
    /// uses [`DEFAULT_CHECKPOINT_EVERY`].
    pub checkpoint_every: Option<u64>,
}

/// Checkpoint cadence (in completed queries) used when a store is configured
/// without an explicit [`CrawlConfig::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 32;

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            max_rounds: None,
            max_queries: None,
            target_coverage: None,
            known_target_size: None,
            abort: AbortPolicy::default(),
            retry: RetryPolicy::default(),
            max_requeues: 4,
            prober: ProberMode::default(),
            query_mode: QueryMode::default(),
            checkpoint_store: None,
            checkpoint_every: None,
        }
    }
}

impl CrawlConfig {
    /// Starts building a validated configuration.
    pub fn builder() -> CrawlConfigBuilder {
        CrawlConfigBuilder { config: CrawlConfig::default() }
    }
}

/// Builder for [`CrawlConfig`]; see [`CrawlConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct CrawlConfigBuilder {
    config: CrawlConfig,
}

impl CrawlConfigBuilder {
    /// Caps elapsed rounds (requests + backoff waits). Must be positive.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.config.max_rounds = Some(rounds);
        self
    }

    /// Caps issued queries. Must be positive.
    pub fn max_queries(mut self, queries: u64) -> Self {
        self.config.max_queries = Some(queries);
        self
    }

    /// Stops once true coverage reaches `fraction` (in `(0, 1]`); requires
    /// [`known_target_size`](Self::known_target_size).
    pub fn target_coverage(mut self, fraction: f64) -> Self {
        self.config.target_coverage = Some(fraction);
        self
    }

    /// Declares the target's true size (controlled experiments).
    pub fn known_target_size(mut self, records: usize) -> Self {
        self.config.known_target_size = Some(records);
        self
    }

    /// Sets the per-query abortion heuristics.
    pub fn abort(mut self, abort: AbortPolicy) -> Self {
        self.config.abort = abort;
        self
    }

    /// Sets the transient-failure retry schedule.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Shorthand: `n` retries with the default backoff schedule.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.retry.max_retries = n;
        self
    }

    /// Caps total-failure requeues per value (0 = never requeue).
    pub fn max_requeues(mut self, n: u32) -> Self {
        self.config.max_requeues = n;
        self
    }

    /// Enables periodic checkpointing into `store`.
    pub fn checkpoint_store(mut self, store: crate::store::CheckpointStore) -> Self {
        self.config.checkpoint_store = Some(store);
        self
    }

    /// Sets the checkpoint cadence in completed queries. Must be positive.
    pub fn checkpoint_every(mut self, queries: u64) -> Self {
        self.config.checkpoint_every = Some(queries);
        self
    }

    /// Sets the prober mode.
    pub fn prober(mut self, prober: ProberMode) -> Self {
        self.config.prober = prober;
        self
    }

    /// Sets the query submission mode.
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.config.query_mode = mode;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<CrawlConfig, ConfigError> {
        let c = &self.config;
        if c.max_rounds == Some(0) {
            return Err(ConfigError::ZeroBudget("max_rounds"));
        }
        if c.max_queries == Some(0) {
            return Err(ConfigError::ZeroBudget("max_queries"));
        }
        if c.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroBudget("checkpoint_every"));
        }
        if let QueryMode::Conjunctive { arity } = c.query_mode {
            if arity < 2 {
                return Err(ConfigError::BadArity(arity));
            }
        }
        if let Some(t) = c.target_coverage {
            if !(t > 0.0 && t <= 1.0) {
                return Err(ConfigError::BadCoverage(t));
            }
            if c.known_target_size.is_none() {
                return Err(ConfigError::CoverageNeedsTargetSize);
            }
        }
        Ok(self.config)
    }
}

/// Why a crawl ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `L_to-query` is empty: every reachable candidate was issued.
    FrontierExhausted,
    /// The round budget was exhausted.
    RoundBudget,
    /// The query budget was exhausted.
    QueryBudget,
    /// The coverage target was reached.
    CoverageReached,
    /// A supervised fleet abandoned the job after its worker exceeded the
    /// restart budget ([`crate::fleet::FleetConfig::max_restarts`]).
    WorkerFailed,
}

/// Summary of a finished crawl.
#[derive(Debug)]
pub struct CrawlReport {
    /// Queries issued.
    pub queries: u64,
    /// Page requests issued (including failed attempts). Matches the
    /// source-side request count attributable to this crawler.
    pub rounds: u64,
    /// Simulated rounds spent waiting in retry backoff.
    pub backoff_rounds: u64,
    /// Simulated rounds lost to source-side latency stalls.
    pub stall_rounds: u64,
    /// Records harvested into `DB_local`.
    pub records: u64,
    /// Queries cut short by the abortion heuristics.
    pub aborted_queries: u64,
    /// Transient failures encountered (and retried).
    pub transient_failures: u64,
    /// Pages that arrived truncated or otherwise corrupt (subset of
    /// `transient_failures`).
    pub corrupt_pages: u64,
    /// Attempts put back on the frontier after failing entirely on
    /// transient-class errors.
    pub requeued_queries: u64,
    /// Periodic checkpoints persisted during the crawl.
    pub checkpoints_written: u64,
    /// Periodic checkpoint saves that failed (the crawl continues; the
    /// previous on-disk generation remains valid).
    pub checkpoint_failures: u64,
    /// Why the crawl stopped.
    pub stop: StopReason,
    /// Per-query progress trace.
    pub trace: CrawlTrace,
    /// Final true coverage, when the target size was known.
    pub final_coverage: Option<f64>,
}

impl CrawlReport {
    /// Total rounds billed against budgets: requests plus backoff waits
    /// plus stall waits.
    pub fn elapsed_rounds(&self) -> u64 {
        self.rounds + self.backoff_rounds + self.stall_rounds
    }
}

/// Outcome of one page fetch (after retries).
enum PageFetch {
    /// The page arrived intact.
    Page(crate::extract::ExtractedPage),
    /// The fetch was abandoned; `transient` says whether the final error was
    /// transient-class (retry exhaustion / budget) rather than fatal.
    GaveUp {
        /// Whether the last error seen was transient-class.
        transient: bool,
    },
}

/// A hidden-web database crawler bound to one target source.
///
/// The crawler owns its source handle `S`. Borrow-style use passes
/// `&server` (the blanket `DataSource for &S` impl); fleet workers sharing
/// one server each own an `Arc<WebDbServer>` clone.
pub struct Crawler<S: DataSource> {
    source: S,
    policy: Box<dyn SelectionPolicy>,
    state: CrawlState,
    config: CrawlConfig,
    trace: CrawlTrace,
    rounds: u64,
    backoff_rounds: u64,
    stall_rounds: u64,
    queries: u64,
    aborted_queries: u64,
    transient_failures: u64,
    corrupt_pages: u64,
    requeued_queries: u64,
    checkpoints_written: u64,
    checkpoint_failures: u64,
    /// Consecutive transient-class failures with no successful page in
    /// between; the circuit-breaker signal a supervisor samples.
    fault_streak: u32,
    /// Per-value requeue tally (values absent have never been requeued).
    requeues: std::collections::HashMap<ValueId, u32>,
    /// Whole-query seed groups for conjunctive mode, issued before the policy
    /// takes over.
    pending_seed_groups: Vec<Vec<(String, String)>>,
}

impl<S: DataSource> Crawler<S> {
    /// Creates a crawler for `source` with the given policy.
    ///
    /// The attribute names and their queriability are read from the source's
    /// interface — the information a crawler gets from inspecting the query
    /// form — never from backend data.
    pub fn new(source: S, policy: Box<dyn SelectionPolicy>, config: CrawlConfig) -> Self {
        let iface = source.interface();
        let attr_names = iface.attr_names.clone();
        let attr_queriable: Vec<bool> = (0..attr_names.len())
            .map(|i| iface.is_queriable(dwc_model::AttrId(i as u16)))
            .collect();
        let keyword_available = iface.keyword_search;
        let mut state = CrawlState::new(attr_names, attr_queriable, iface.page_size);
        state.target_size = config.known_target_size;
        state.keyword_mode = config.query_mode == QueryMode::Keyword;
        assert!(
            !state.keyword_mode || keyword_available,
            "keyword query mode requires an interface with keyword search"
        );
        let mut policy = policy;
        policy.init(&mut state);
        Crawler {
            source,
            policy,
            state,
            config,
            trace: CrawlTrace::new(),
            rounds: 0,
            backoff_rounds: 0,
            stall_rounds: 0,
            queries: 0,
            aborted_queries: 0,
            transient_failures: 0,
            corrupt_pages: 0,
            requeued_queries: 0,
            checkpoints_written: 0,
            checkpoint_failures: 0,
            fault_streak: 0,
            requeues: std::collections::HashMap::new(),
            pending_seed_groups: Vec::new(),
        }
    }

    /// Snapshots the crawl into a [`crate::checkpoint::Checkpoint`]:
    /// vocabulary, statuses, `L_queried`, harvested records and cost
    /// counters. Policy internals are rebuilt on resume.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            attr_names: self.state.attr_names.clone(),
            attr_queriable: self.state.attr_queriable.clone(),
            page_size: self.state.page_size,
            keyword_mode: self.state.keyword_mode,
            values: self
                .state
                .vocab
                .iter_ids()
                .map(|v| (self.state.vocab.attr_of(v).0, self.state.vocab.value_str(v).to_owned()))
                .collect(),
            status: self.state.status.clone(),
            queried: self.state.queried.iter().map(|v| v.0).collect(),
            records: self
                .state
                .local
                .iter_keyed()
                .map(|(k, vals)| (k, vals.iter().map(|v| v.0).collect()))
                .collect(),
            rounds: self.rounds,
            queries: self.queries,
        }
    }

    /// Resumes a checkpointed crawl against `source` with a fresh policy
    /// instance. The shared state (vocabulary, statuses, `DB_local`,
    /// `L_queried`, cost counters) is restored exactly; policy internals are
    /// rebuilt via [`SelectionPolicy::resume`].
    ///
    /// # Panics
    /// Panics if the checkpoint is internally inconsistent (ids out of
    /// range) or if `config.query_mode` demands keyword support the
    /// checkpoint's interface flags contradict.
    pub fn resume(
        source: S,
        policy: Box<dyn SelectionPolicy>,
        checkpoint: &crate::checkpoint::Checkpoint,
        config: CrawlConfig,
    ) -> Self {
        assert_eq!(
            checkpoint.values.len(),
            checkpoint.status.len(),
            "checkpoint status/vocabulary mismatch"
        );
        let mut state = CrawlState::new(
            checkpoint.attr_names.clone(),
            checkpoint.attr_queriable.clone(),
            checkpoint.page_size,
        );
        state.keyword_mode = checkpoint.keyword_mode;
        state.target_size = config.known_target_size;
        for (attr, s) in &checkpoint.values {
            assert!((*attr as usize) < state.attr_names.len(), "value attr out of range");
            state.intern(dwc_model::AttrId(*attr), s);
        }
        state.status.copy_from_slice(&checkpoint.status);
        state.queried = checkpoint
            .queried
            .iter()
            .map(|&q| {
                assert!((q as usize) < checkpoint.values.len(), "queried id out of range");
                ValueId(q)
            })
            .collect();
        for (key, vals) in &checkpoint.records {
            let values: Vec<ValueId> = vals
                .iter()
                .map(|&v| {
                    assert!((v as usize) < checkpoint.values.len(), "record id out of range");
                    ValueId(v)
                })
                .collect();
            state.local.insert(*key, values);
        }
        let mut policy = policy;
        policy.resume(&mut state);
        let mut trace = CrawlTrace::new();
        trace.push(TracePoint {
            rounds: checkpoint.rounds,
            queries: checkpoint.queries,
            records: state.local.num_records() as u64,
        });
        Crawler {
            source,
            policy,
            state,
            config,
            trace,
            rounds: checkpoint.rounds,
            backoff_rounds: 0,
            stall_rounds: 0,
            queries: checkpoint.queries,
            aborted_queries: 0,
            transient_failures: 0,
            corrupt_pages: 0,
            requeued_queries: 0,
            checkpoints_written: 0,
            checkpoint_failures: 0,
            fault_streak: 0,
            requeues: std::collections::HashMap::new(),
            pending_seed_groups: Vec::new(),
        }
    }

    /// Adds a whole seed *query* — a group of `(attribute, value)` pairs
    /// issued as one conjunctive query before the policy takes over. This is
    /// how a crawl of a restrictive multi-attribute form is bootstrapped
    /// (single seed values cannot be issued there).
    pub fn add_seed_group(&mut self, pairs: &[(&str, &str)]) {
        self.pending_seed_groups
            .push(pairs.iter().map(|(a, v)| (a.to_string(), v.to_string())).collect());
    }

    /// Adds a seed attribute value. Returns `false` when the attribute is
    /// unknown or not queriable (the seed is useless then).
    pub fn add_seed(&mut self, attr_name: &str, value: &str) -> bool {
        let Some(attr) = self.state.attr_by_name(attr_name) else { return false };
        if !self.state.keyword_mode && !self.state.attr_queriable[attr.0 as usize] {
            return false;
        }
        let v = self.state.intern(attr, value);
        if self.state.status_of(v) == CandStatus::Undiscovered {
            self.state.status[v.index()] = CandStatus::Frontier;
            self.policy.on_discovered(&self.state, v);
        }
        true
    }

    /// Read access to the crawl state (vocabulary, `DB_local`, `L_queried`).
    pub fn state(&self) -> &CrawlState {
        &self.state
    }

    /// Read access to the source handle.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Page requests issued so far (including failed attempts).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Simulated rounds spent waiting in retry backoff so far.
    pub fn backoff_rounds(&self) -> u64 {
        self.backoff_rounds
    }

    /// Simulated rounds lost to source-side latency stalls so far.
    pub fn stall_rounds(&self) -> u64 {
        self.stall_rounds
    }

    /// Rounds billed against budgets: requests plus backoff waits plus
    /// stall waits.
    pub fn elapsed_rounds(&self) -> u64 {
        self.rounds + self.backoff_rounds + self.stall_rounds
    }

    /// Consecutive transient-class failures since the last successful page.
    /// Resets to zero on every page that arrives intact. Supervisors sample
    /// this at slice boundaries to drive per-source circuit breakers.
    pub fn fault_streak(&self) -> u32 {
        self.fault_streak
    }

    /// Checkpoints persisted by the periodic checkpointing loop so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Consumes the crawler and returns its source handle (used by
    /// supervisors that must re-wrap the source for a restarted worker).
    pub fn into_source(self) -> S {
        self.source
    }

    /// The configured round budget, if any.
    pub fn max_rounds(&self) -> Option<u64> {
        self.config.max_rounds
    }

    /// The configured coverage target, if any.
    pub fn target_coverage(&self) -> Option<f64> {
        self.config.target_coverage
    }

    /// Runs the crawl to a stop condition and reports.
    pub fn run(mut self) -> CrawlReport {
        let stop = loop {
            if let Some(reason) = self.budget_stop() {
                break reason;
            }
            match self.step() {
                Some(()) => {}
                None => break StopReason::FrontierExhausted,
            }
        };
        self.into_report(stop)
    }

    /// Finalizes the crawl at its current state without issuing further
    /// queries (used by drivers that call [`Crawler::step`] themselves, like
    /// the fleet coordinator).
    pub fn into_report(self, stop: StopReason) -> CrawlReport {
        CrawlReport {
            queries: self.queries,
            rounds: self.rounds,
            backoff_rounds: self.backoff_rounds,
            stall_rounds: self.stall_rounds,
            records: self.state.local.num_records() as u64,
            aborted_queries: self.aborted_queries,
            transient_failures: self.transient_failures,
            corrupt_pages: self.corrupt_pages,
            requeued_queries: self.requeued_queries,
            checkpoints_written: self.checkpoints_written,
            checkpoint_failures: self.checkpoint_failures,
            stop,
            final_coverage: self.state.coverage(),
            trace: self.trace,
        }
    }

    fn budget_stop(&self) -> Option<StopReason> {
        if let Some(max) = self.config.max_rounds {
            if self.elapsed_rounds() >= max {
                return Some(StopReason::RoundBudget);
            }
        }
        if let Some(max) = self.config.max_queries {
            if self.queries >= max {
                return Some(StopReason::QueryBudget);
            }
        }
        if let (Some(target), Some(cov)) = (self.config.target_coverage, self.state.coverage()) {
            if cov >= target {
                return Some(StopReason::CoverageReached);
            }
        }
        None
    }

    /// Issues one query — a pending seed group if any, otherwise the next
    /// candidate the policy selects. Returns `None` when both are exhausted.
    pub fn step(&mut self) -> Option<()> {
        if let Some(group) = self.pending_seed_groups.pop() {
            let query = Query::Conjunctive(group);
            let outcome = self.fetch_all_pages(&query, 0);
            self.finish_query(None, outcome);
            return Some(());
        }
        let v = self.policy.select(&self.state)?;
        self.state.status[v.index()] = CandStatus::Queried;
        self.state.queried.push(v);
        let value_str = self.state.vocab.value_str(v).to_owned();
        let attr = self.state.vocab.attr_of(v);
        let attr_name = self.state.attr_names[attr.0 as usize].clone();
        let query = match self.config.query_mode {
            QueryMode::Structured => Query::ByString { attr: attr_name, value: value_str },
            QueryMode::Keyword => Query::Keyword(value_str),
            QueryMode::Conjunctive { arity } => {
                let mut pairs = vec![(attr_name, value_str)];
                pairs.extend(self.best_partners(v, arity.saturating_sub(1)));
                Query::Conjunctive(pairs)
            }
        };
        let local_before = u64::from(self.state.local.count(v));
        let outcome = self.fetch_all_pages(&query, local_before);
        if outcome.failed_transient && self.try_requeue(v) {
            // The attempt is billed (rounds, a query, a trace point) but the
            // candidate goes back on the frontier instead of being treated
            // as answered: the records behind it are not lost to the fault
            // burst that swallowed this attempt.
            self.finish_query(None, outcome);
        } else {
            self.finish_query(Some(v), outcome);
        }
        Some(())
    }

    /// Puts `v` back on the frontier after a total transient failure, if its
    /// requeue budget allows. Returns whether the requeue happened.
    fn try_requeue(&mut self, v: ValueId) -> bool {
        let n = self.requeues.entry(v).or_insert(0);
        if *n >= self.config.max_requeues {
            return false;
        }
        *n += 1;
        self.requeued_queries += 1;
        // The candidate was pushed onto `L_queried` at selection time; take
        // it back out so the checkpointed state requeues it too.
        if let Some(pos) = self.state.queried.iter().rposition(|&q| q == v) {
            self.state.queried.remove(pos);
        }
        self.state.status[v.index()] = CandStatus::Frontier;
        self.policy.on_discovered(&self.state, v);
        true
    }

    /// Book-keeping shared by candidate queries and seed-group queries.
    fn finish_query(&mut self, v: Option<ValueId>, outcome: QueryOutcome) {
        self.state.push_harvest(outcome.normalized_harvest_rate(self.state.page_size));
        self.queries += 1;
        self.trace.push(TracePoint {
            rounds: self.rounds,
            queries: self.queries,
            records: self.state.local.num_records() as u64,
        });
        if let Some(v) = v {
            self.policy.on_query_done(&self.state, v, &outcome);
        }
        self.maybe_checkpoint();
    }

    /// Persists a periodic checkpoint when a store is configured and the
    /// cadence is due. Persistence failures never kill the crawl — they are
    /// tallied in [`CrawlReport::checkpoint_failures`] and the previous
    /// on-disk generation stays valid.
    fn maybe_checkpoint(&mut self) {
        let Some(store) = self.config.checkpoint_store.clone() else { return };
        let every = self.config.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1);
        if !self.queries.is_multiple_of(every) {
            return;
        }
        match store.save(&self.checkpoint()) {
            Ok(()) => self.checkpoints_written += 1,
            Err(_) => self.checkpoint_failures += 1,
        }
    }

    /// For conjunctive mode: the locally most co-occurring partner values of
    /// `v`, one per distinct attribute other than `v`'s (and each other's).
    /// Partners make the conjunction as unrestrictive as local knowledge
    /// allows — a popular co-value keeps the intersection large.
    fn best_partners(&self, v: ValueId, want: usize) -> Vec<(String, String)> {
        use std::collections::HashMap;
        if want == 0 {
            return Vec::new();
        }
        let my_attr = self.state.vocab.attr_of(v);
        let mut co_counts: HashMap<ValueId, u32> = HashMap::new();
        for rec in self.state.local.records() {
            if rec.binary_search(&v).is_err() {
                continue;
            }
            for &w in rec {
                if w != v && self.state.vocab.attr_of(w) != my_attr {
                    *co_counts.entry(w).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(ValueId, u32)> = co_counts.into_iter().collect();
        ranked.sort_by_key(|&(w, c)| (std::cmp::Reverse(c), w.0));
        let mut used_attrs = vec![my_attr];
        let mut out = Vec::with_capacity(want);
        for (w, _) in ranked {
            let attr = self.state.vocab.attr_of(w);
            if used_attrs.contains(&attr) {
                continue;
            }
            used_attrs.push(attr);
            out.push((
                self.state.attr_names[attr.0 as usize].clone(),
                self.state.vocab.value_str(w).to_owned(),
            ));
            if out.len() == want {
                break;
            }
        }
        out
    }

    /// Fetches pages of one query until pagination ends, the abortion
    /// heuristic fires, or a budget is hit. `local_before` is the number of
    /// matching records already held (`num(q, DB_local)` at query start).
    fn fetch_all_pages(&mut self, query: &Query, local_before: u64) -> QueryOutcome {
        let mut outcome = QueryOutcome::default();
        let mut abort_state =
            AbortState::new(self.config.abort.clone(), self.state.page_size, local_before);
        let mut touched: Vec<ValueId> = Vec::new();
        let mut newly_discovered: Vec<ValueId> = Vec::new();
        let mut page_index = 0usize;
        let mut gave_up_transient = false;
        loop {
            if let Some(max) = self.config.max_rounds {
                if self.elapsed_rounds() >= max {
                    break;
                }
            }
            let page = match self.fetch_page_with_retries(query, page_index) {
                PageFetch::Page(page) => page,
                PageFetch::GaveUp { transient } => {
                    gave_up_transient = transient;
                    break;
                }
            };
            outcome.pages += 1;
            if page.total_matches.is_some() {
                outcome.reported_total = page.total_matches;
            }
            let returned = page.records.len() as u64;
            let mut new_in_page = 0u64;
            for rec in &page.records {
                if self.ingest_record(rec, &mut touched, &mut newly_discovered) {
                    new_in_page += 1;
                }
            }
            outcome.returned_records += returned;
            outcome.new_records += new_in_page;
            abort_state.observe_page(page.total_matches, returned, new_in_page);
            if !page.has_more {
                break;
            }
            if abort_state.should_abort() {
                outcome.aborted = true;
                self.aborted_queries += 1;
                break;
            }
            page_index += 1;
        }
        touched.sort_unstable();
        touched.dedup();
        outcome.touched_values = touched;
        outcome.failed_transient = outcome.pages == 0 && gave_up_transient;
        for &d in &newly_discovered {
            self.policy.on_discovered(&self.state, d);
        }
        outcome
    }

    /// One page request with transient-failure retries. Every attempt costs
    /// a round; every wait between attempts costs backoff rounds per the
    /// [`RetryPolicy`] schedule, and latency stalls bill their wasted rounds
    /// on top. Fatal errors, retry exhaustion, and running out of round
    /// budget mid-backoff end the query.
    fn fetch_page_with_retries(&mut self, query: &Query, page_index: usize) -> PageFetch {
        let mut attempt = 0u32;
        loop {
            self.rounds += 1;
            let err = match self.source.query_page(query, page_index, self.config.prober) {
                Ok(page) => {
                    self.fault_streak = 0;
                    return PageFetch::Page(page);
                }
                Err(e) => e,
            };
            if !err.is_transient() {
                return PageFetch::GaveUp { transient: false };
            }
            self.fault_streak = self.fault_streak.saturating_add(1);
            self.transient_failures += 1;
            match err {
                // A stall is its own wait: the wasted rounds are billed, no
                // extra backoff is layered on top.
                CrawlError::Stalled { wasted_rounds } => self.stall_rounds += wasted_rounds,
                CrawlError::CorruptPage => self.corrupt_pages += 1,
                _ => {}
            }
            attempt += 1;
            if attempt > self.config.retry.max_retries {
                return PageFetch::GaveUp { transient: true };
            }
            if !matches!(err, CrawlError::Stalled { .. }) {
                self.backoff_rounds += self.config.retry.backoff_before(attempt);
            }
            if let Some(max) = self.config.max_rounds {
                if self.elapsed_rounds() >= max {
                    return PageFetch::GaveUp { transient: true };
                }
            }
        }
    }

    /// Inserts one extracted record into `DB_local`; returns `true` when new.
    /// Decomposes the record into candidate values (the "decompose" step).
    fn ingest_record(
        &mut self,
        rec: &ExtractedRecord,
        touched: &mut Vec<ValueId>,
        newly_discovered: &mut Vec<ValueId>,
    ) -> bool {
        if self.state.local.contains_key(rec.key) {
            return false;
        }
        let mut values = Vec::with_capacity(rec.fields.len());
        for (attr_name, s) in &rec.fields {
            let Some(attr) = self.state.attr_by_name(attr_name) else { continue };
            let vid = self.state.intern(attr, s);
            values.push(vid);
        }
        for &vid in &values {
            touched.push(vid);
            if self.state.status_of(vid) == CandStatus::Undiscovered && self.state.is_queriable(vid)
            {
                self.state.status[vid.index()] = CandStatus::Frontier;
                newly_discovered.push(vid);
            }
        }
        self.state.local.insert(rec.key, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::source::FaultySource;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};

    fn figure1_server(page_size: usize) -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), page_size);
        WebDbServer::new(t, spec)
    }

    fn run_policy(kind: PolicyKind, page_size: usize) -> CrawlReport {
        let server = figure1_server(page_size);
        let config = CrawlConfig::builder().known_target_size(5).build().unwrap();
        let mut crawler = Crawler::new(&server, kind.build(), config);
        assert!(crawler.add_seed("A", "a2"));
        crawler.run()
    }

    #[test]
    fn every_policy_harvests_the_whole_figure1_database() {
        for kind in [
            PolicyKind::Bfs,
            PolicyKind::Dfs,
            PolicyKind::Random(7),
            PolicyKind::GreedyLink,
            PolicyKind::Mmmi(Default::default()),
        ] {
            let report = run_policy(kind.clone(), 10);
            assert_eq!(report.records, 5, "{} must reach all records", kind.label());
            assert_eq!(report.stop, StopReason::FrontierExhausted);
            assert_eq!(report.final_coverage, Some(1.0));
        }
    }

    #[test]
    fn example_2_1_first_query_sees_three_records() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.step().unwrap();
        assert_eq!(crawler.state().local.num_records(), 3);
        assert_eq!(crawler.rounds(), 1);
        // Decomposition discovered b2, c1, c2, b3 (a2 is queried).
        assert_eq!(crawler.state().vocab.len(), 5);
    }

    #[test]
    fn wire_and_html_modes_equal_in_process_mode() {
        let run = |prober| {
            let server = figure1_server(2);
            let config = CrawlConfig::builder().prober(prober).build().unwrap();
            let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            crawler.add_seed("A", "a2");
            let report = crawler.run();
            (report.records, report.rounds, report.queries)
        };
        let baseline = run(ProberMode::InProcess);
        assert_eq!(baseline, run(ProberMode::Wire));
        assert_eq!(baseline, run(ProberMode::Html));
    }

    #[test]
    fn rounds_match_cost_model() {
        // Page size 1: querying a2 (3 matches) costs 3 rounds.
        let server = figure1_server(1);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.step().unwrap();
        assert_eq!(crawler.rounds(), 3);
        assert_eq!(crawler.rounds(), DataSource::rounds_used(crawler.source()));
    }

    #[test]
    fn round_budget_stops_mid_query() {
        let server = figure1_server(1);
        let config = CrawlConfig::builder().max_rounds(2).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::RoundBudget);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn query_budget_respected() {
        let server = figure1_server(10);
        let config = CrawlConfig::builder().max_queries(1).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::QueryBudget);
        assert_eq!(report.queries, 1);
    }

    #[test]
    fn coverage_target_stops_early() {
        let server = figure1_server(10);
        let config =
            CrawlConfig::builder().known_target_size(5).target_coverage(0.6).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::CoverageReached);
        assert!(report.records >= 3);
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            CrawlConfig::builder().max_rounds(0).build().unwrap_err(),
            ConfigError::ZeroBudget("max_rounds")
        );
        assert_eq!(
            CrawlConfig::builder().max_queries(0).build().unwrap_err(),
            ConfigError::ZeroBudget("max_queries")
        );
        assert_eq!(
            CrawlConfig::builder()
                .query_mode(QueryMode::Conjunctive { arity: 1 })
                .build()
                .unwrap_err(),
            ConfigError::BadArity(1)
        );
        assert_eq!(
            CrawlConfig::builder().known_target_size(5).target_coverage(1.5).build().unwrap_err(),
            ConfigError::BadCoverage(1.5)
        );
        assert_eq!(
            CrawlConfig::builder().target_coverage(0.9).build().unwrap_err(),
            ConfigError::CoverageNeedsTargetSize
        );
        assert!(CrawlConfig::builder()
            .max_rounds(10_000)
            .known_target_size(5)
            .target_coverage(0.9)
            .build()
            .is_ok());
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(2));
        let config = CrawlConfig::builder().max_retries(3).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.records, 5, "faults must not lose records");
        assert!(report.transient_failures > 0);
        assert!(report.rounds > report.queries, "failed rounds are counted");
        assert!(report.backoff_rounds > 0, "retries wait before re-asking");
    }

    #[test]
    fn faulty_source_decorator_behaves_like_builtin_faults() {
        let run_with = |decorated: bool| {
            let t = figure1_table();
            let spec = InterfaceSpec::permissive(t.schema(), 10);
            let config = CrawlConfig::builder().max_retries(3).build().unwrap();
            let report = if decorated {
                let source = FaultySource::new(WebDbServer::new(t, spec), FaultPolicy::every(2));
                let mut crawler = Crawler::new(source, PolicyKind::Bfs.build(), config);
                crawler.add_seed("A", "a2");
                crawler.run()
            } else {
                let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(2));
                let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
                crawler.add_seed("A", "a2");
                crawler.run()
            };
            (report.records, report.rounds, report.transient_failures)
        };
        assert_eq!(run_with(true), run_with(false));
    }

    #[test]
    fn backoff_counts_against_round_budget() {
        // Every request fails; generous retries but a tiny round budget. The
        // budget must stop the crawl even though no page ever arrives.
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(1));
        let config = CrawlConfig::builder()
            .max_rounds(10)
            .retry(RetryPolicy { max_retries: 100, backoff_base: 1, backoff_cap: 8 })
            .build()
            .unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::RoundBudget);
        assert!(report.elapsed_rounds() >= 10);
        assert!(
            report.rounds < 10,
            "backoff waits, not just requests, must fill the budget: {} requests",
            report.rounds
        );
    }

    #[test]
    fn keyword_mode_crawls_through_the_keyword_box() {
        let server = figure1_server(10);
        let config = CrawlConfig::builder().query_mode(QueryMode::Keyword).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        assert!(crawler.add_seed("A", "a2"));
        let report = crawler.run();
        assert_eq!(report.records, 5, "keyword crawling reaches everything too");
    }

    #[test]
    fn keyword_mode_unlocks_form_locked_attributes() {
        let run = |mode: QueryMode| {
            let t = figure1_table();
            let mut spec2 = InterfaceSpec::permissive(t.schema(), 10);
            spec2.queriable_attrs.retain(|&a| a == dwc_model::AttrId(2));
            let server = WebDbServer::new(t, spec2);
            let config = CrawlConfig { query_mode: mode, ..Default::default() };
            let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            crawler.add_seed("C", "c1");
            crawler.run()
        };
        // Structured: only C-values can be issued. c1 retrieves records 0–1,
        // whose decomposition yields no further C value (c2 appears only in
        // records it cannot reach) — the crawl is stuck at 2 records.
        let structured = run(QueryMode::Structured);
        assert_eq!(structured.records, 2);
        // Keyword: every discovered value (a*, b*, c*) is usable — a2 bridges
        // to c2's records and the whole database is harvested. This is
        // §2.2's "fading schema opens exciting opportunities" in action.
        let keyword = run(QueryMode::Keyword);
        assert_eq!(keyword.records, 5);
    }

    #[test]
    fn conjunctive_mode_crawls_restrictive_forms() {
        // The form demands two filled fields; the keyword box is gone.
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10).requiring_attrs(2);
        let server = WebDbServer::new(t, spec);
        let config = CrawlConfig::builder()
            .query_mode(QueryMode::Conjunctive { arity: 2 })
            .known_target_size(5)
            .build()
            .unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
        crawler.add_seed_group(&[("A", "a2"), ("B", "b2")]);
        let report = crawler.run();
        // The seed pair a2 ∧ b2 retrieves records 1–2; follow-up conjunctive
        // queries keep harvesting, but conjunctions are restrictive — full
        // coverage is NOT guaranteed (which is exactly why the paper's case
        // study flags multi-attribute-only sources as hard to crawl).
        assert!(report.records >= 2, "seed group must land");
        assert!(report.queries > 1, "policy-driven conjunctive queries must follow");
    }

    #[test]
    fn conjunctive_covers_less_than_single_attribute_crawling() {
        let run = |mode: QueryMode, restrictive: bool| {
            let t = figure1_table();
            let mut spec = InterfaceSpec::permissive(t.schema(), 10);
            if restrictive {
                spec = spec.requiring_attrs(2);
            }
            let server = WebDbServer::new(t, spec);
            let config = CrawlConfig { query_mode: mode, ..Default::default() };
            let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            if restrictive {
                crawler.add_seed_group(&[("A", "a2"), ("B", "b2")]);
            } else {
                crawler.add_seed("A", "a2");
            }
            crawler.run().records
        };
        let single = run(QueryMode::Structured, false);
        let conjunctive = run(QueryMode::Conjunctive { arity: 2 }, true);
        assert_eq!(single, 5);
        assert!(conjunctive <= single);
    }

    #[test]
    #[should_panic(expected = "keyword query mode requires")]
    fn keyword_mode_requires_keyword_interface() {
        let t = figure1_table();
        let mut spec = InterfaceSpec::permissive(t.schema(), 10);
        spec.keyword_search = false;
        let server = WebDbServer::new(t, spec);
        let config = CrawlConfig { query_mode: QueryMode::Keyword, ..Default::default() };
        let _ = Crawler::new(&server, PolicyKind::Bfs.build(), config);
    }

    #[test]
    fn bad_seed_rejected() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        assert!(!crawler.add_seed("Nope", "x"));
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::FrontierExhausted);
        assert_eq!(report.records, 0);
    }

    #[test]
    fn seed_that_matches_nothing_still_costs_a_round() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        assert!(crawler.add_seed("A", "does-not-exist"));
        let report = crawler.run();
        assert_eq!(report.rounds, 1);
        assert_eq!(report.records, 0);
        assert_eq!(report.queries, 1);
    }

    #[test]
    fn duplicate_records_not_double_counted() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.add_seed("C", "c2");
        let report = crawler.run();
        assert_eq!(report.records, 5, "overlapping queries must dedup");
    }

    #[test]
    fn checkpoint_resume_completes_like_uninterrupted_run() {
        // Uninterrupted baseline.
        let server = figure1_server(2);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        let baseline = crawler.run();

        // Interrupted run: two queries, checkpoint through the text format,
        // resume with a fresh server and policy, finish.
        let server1 = figure1_server(2);
        let mut crawler1 = Crawler::new(&server1, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler1.add_seed("A", "a2");
        crawler1.step().unwrap();
        crawler1.step().unwrap();
        let text = crawler1.checkpoint().to_text();
        drop(crawler1);

        let cp = crate::checkpoint::Checkpoint::from_text(&text).unwrap();
        let server2 = figure1_server(2);
        let crawler2 =
            Crawler::resume(&server2, PolicyKind::Bfs.build(), &cp, CrawlConfig::default());
        let resumed = crawler2.run();

        assert_eq!(resumed.records, baseline.records);
        // BFS frontier order is id order = discovery order, so the resumed
        // run issues exactly the remaining queries: total cost matches.
        assert_eq!(resumed.rounds, baseline.rounds);
        assert_eq!(resumed.queries, baseline.queries);
    }

    #[test]
    fn checkpoint_resume_works_for_domain_policy() {
        use crate::domain_table::DomainTable;
        use std::sync::Arc;
        let dm = Arc::new(DomainTable::build(figure1_table()));
        let kind = PolicyKind::Domain(Arc::clone(&dm));
        let config = || CrawlConfig { known_target_size: Some(5), ..Default::default() };

        let server1 = figure1_server(10);
        let mut crawler1 = Crawler::new(&server1, kind.build(), config());
        crawler1.add_seed("A", "a2");
        crawler1.step().unwrap();
        let cp = crawler1.checkpoint();
        drop(crawler1);

        let server2 = figure1_server(10);
        let crawler2 = Crawler::resume(&server2, kind.build(), &cp, config());
        let resumed = crawler2.run();
        assert_eq!(resumed.records, 5, "DM resume must still reach everything");
        assert_eq!(resumed.final_coverage, Some(1.0));
    }

    #[test]
    fn checkpoint_counters_carry_over() {
        let server = figure1_server(1);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.step().unwrap(); // 3 matches at page size 1 → 3 rounds
        let cp = crawler.checkpoint();
        assert_eq!(cp.rounds, 3);
        assert_eq!(cp.queries, 1);
        assert_eq!(cp.records.len(), 3);
        drop(crawler);
        let server2 = figure1_server(1);
        let crawler2 =
            Crawler::resume(&server2, PolicyKind::Bfs.build(), &cp, CrawlConfig::default());
        assert_eq!(crawler2.rounds(), 3);
        assert_eq!(crawler2.state().local.num_records(), 3);
    }

    #[test]
    fn trace_is_recorded_per_query() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.trace.points().len() as u64, report.queries);
        let last = report.trace.last().unwrap();
        assert_eq!(last.records, report.records);
        assert_eq!(last.rounds, report.rounds);
    }
}
