//! The query–harvest–decompose crawl loop (paper §1, §2.5).
//!
//! "It starts with some seed queries prepared in the form of attribute value
//! pairs … automatically queries the target data source … harvests the data
//! records from the returned pages … populates the extracted records to its
//! local database and decomposes these records into attribute values, which
//! are stored as candidates for future query formulation. This process is
//! repeated until all the possible queries are issued or some stopping
//! criterion is met."
//!
//! [`Crawler`] is a thin driver over the staged engine in [`crate::stage`]:
//! the [`Planner`] selects and formulates the next query, the [`Executor`]
//! runs it against the source (pagination, retries, abortion, round
//! billing), and the [`Ingestor`] harvests its records and grows the
//! frontier. The driver contributes only the glue the stages cannot own —
//! requeue bookkeeping, periodic checkpointing, and stop conditions.
//!
//! Nothing here keeps counters. Every observable fact flows as a
//! [`CrawlEvent`] through the crawler's [`EventBus`], and the bus's
//! [`crate::metrics::MetricsRegistry`] is the single source of truth the
//! [`CrawlReport`] is derived from. Attach extra sinks (JSONL streams, test
//! buffers) with [`Crawler::add_sink`].

use crate::events::{CrawlEvent, EventBus, EventSink};
use crate::policy::SelectionPolicy;
use crate::source::DataSource;
use crate::stage::{Executor, Ingestor, Planner};
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use std::collections::HashMap;

pub use crate::config::{CrawlConfig, CrawlConfigBuilder, QueryMode, DEFAULT_CHECKPOINT_EVERY};
pub use crate::events::StopReason;
pub use crate::metrics::CrawlReport;
pub use crate::source::ProberMode;

/// A hidden-web database crawler bound to one target source.
///
/// The crawler owns its source handle `S`. Borrow-style use passes
/// `&server` (the blanket `DataSource for &S` impl); fleet workers sharing
/// one server each own an `Arc<WebDbServer>` clone.
pub struct Crawler<S: DataSource> {
    source: S,
    planner: Planner,
    executor: Executor,
    ingestor: Ingestor,
    state: CrawlState,
    config: CrawlConfig,
    bus: EventBus,
    /// Per-value requeue tally (values absent have never been requeued).
    requeues: HashMap<ValueId, u32>,
    /// Per-query state journal, when `config.journal_path` is set. The base
    /// frame is written lazily at the first [`Crawler::step`] so seeds
    /// planted between construction and the first query are captured.
    journal: Option<crate::journal::StateJournal>,
}

impl<S: DataSource> Crawler<S> {
    /// Creates a crawler for `source` with the given policy.
    ///
    /// The attribute names and their queriability are read from the source's
    /// interface — the information a crawler gets from inspecting the query
    /// form — never from backend data.
    pub fn new(source: S, policy: Box<dyn SelectionPolicy>, config: CrawlConfig) -> Self {
        let iface = source.interface();
        let attr_names = iface.attr_names.clone();
        let attr_queriable: Vec<bool> = (0..attr_names.len())
            .map(|i| iface.is_queriable(dwc_model::AttrId(i as u16)))
            .collect();
        let keyword_available = iface.keyword_search;
        let mut state = CrawlState::new(attr_names, attr_queriable, iface.page_size);
        state.target_size = config.known_target_size;
        state.keyword_mode = config.query_mode == QueryMode::Keyword;
        assert!(
            !state.keyword_mode || keyword_available,
            "keyword query mode requires an interface with keyword search"
        );
        let mut planner = Planner::new(policy, config.query_mode);
        planner.init(&mut state);
        let executor = Executor::from_config(&config);
        let ingestor = Ingestor::new(matches!(config.query_mode, QueryMode::Conjunctive { .. }));
        let journal = Self::open_journal(&config);
        Crawler {
            source,
            planner,
            executor,
            ingestor,
            state,
            config,
            bus: EventBus::new(),
            requeues: HashMap::new(),
            journal,
        }
    }

    /// Creates the state journal named by the configuration, if any.
    /// Creation failures are non-fatal, mirroring checkpoint persistence:
    /// the crawl proceeds unjournaled.
    fn open_journal(config: &CrawlConfig) -> Option<crate::journal::StateJournal> {
        let path = config.journal_path.as_deref()?;
        crate::journal::StateJournal::create(path).ok()
    }

    /// Resumes a checkpointed crawl against `source` with a fresh policy
    /// instance. The shared state (vocabulary, statuses, `DB_local`,
    /// `L_queried`, cost counters) is restored exactly; policy internals and
    /// derived indexes are rebuilt.
    ///
    /// # Panics
    /// Panics if the checkpoint is internally inconsistent (ids out of
    /// range) or if `config.query_mode` demands keyword support the
    /// checkpoint's interface flags contradict.
    pub fn resume(
        source: S,
        policy: Box<dyn SelectionPolicy>,
        checkpoint: &crate::checkpoint::Checkpoint,
        config: CrawlConfig,
    ) -> Self {
        assert_eq!(
            checkpoint.values.len(),
            checkpoint.status.len(),
            "checkpoint status/vocabulary mismatch"
        );
        let mut state = CrawlState::new(
            checkpoint.attr_names.clone(),
            checkpoint.attr_queriable.clone(),
            checkpoint.page_size,
        );
        state.keyword_mode = checkpoint.keyword_mode;
        state.target_size = config.known_target_size;
        for (attr, s) in &checkpoint.values {
            assert!((*attr as usize) < state.attr_names.len(), "value attr out of range");
            state.intern(dwc_model::AttrId(*attr), s);
        }
        state.status.copy_from_slice(&checkpoint.status);
        state.queried = checkpoint
            .queried
            .iter()
            .map(|&q| {
                assert!((q as usize) < checkpoint.values.len(), "queried id out of range");
                ValueId(q)
            })
            .collect();
        for (key, vals) in &checkpoint.records {
            let values: Vec<ValueId> = vals
                .iter()
                .map(|&v| {
                    assert!((v as usize) < checkpoint.values.len(), "record id out of range");
                    ValueId(v)
                })
                .collect();
            state.local.insert(*key, values);
        }
        let mut planner = Planner::new(policy, config.query_mode);
        planner.resume(&mut state);
        let executor = Executor::from_config(&config);
        let mut ingestor =
            Ingestor::new(matches!(config.query_mode, QueryMode::Conjunctive { .. }));
        ingestor.rebuild_from(&state);
        let mut bus = EventBus::new();
        bus.emit(CrawlEvent::CrawlResumed {
            rounds: checkpoint.rounds,
            queries: checkpoint.queries,
            records: state.local.num_records() as u64,
        });
        let journal = Self::open_journal(&config);
        Crawler {
            source,
            planner,
            executor,
            ingestor,
            state,
            config,
            bus,
            requeues: HashMap::new(),
            journal,
        }
    }

    /// Snapshots the crawl into a [`crate::checkpoint::Checkpoint`]:
    /// vocabulary, statuses, `L_queried`, harvested records and cost
    /// counters. Policy internals are rebuilt on resume.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            attr_names: self.state.attr_names.clone(),
            attr_queriable: self.state.attr_queriable.clone(),
            page_size: self.state.page_size,
            keyword_mode: self.state.keyword_mode,
            values: self
                .state
                .vocab
                .iter_ids()
                .map(|v| (self.state.vocab.attr_of(v).0, self.state.vocab.value_str(v).to_owned()))
                .collect(),
            status: self.state.status.clone(),
            queried: self.state.queried.iter().map(|v| v.0).collect(),
            records: self
                .state
                .local
                .iter_keyed()
                .map(|(k, vals)| (k, vals.iter().map(|v| v.0).collect()))
                .collect(),
            rounds: self.bus.metrics().rounds(),
            queries: self.bus.metrics().queries(),
        }
    }

    /// Adds a whole seed *query* — a group of `(attribute, value)` pairs
    /// issued as one conjunctive query before the policy takes over. This is
    /// how a crawl of a restrictive multi-attribute form is bootstrapped
    /// (single seed values cannot be issued there).
    pub fn add_seed_group(&mut self, pairs: &[(&str, &str)]) {
        self.planner.add_seed_group(pairs);
    }

    /// Adds a seed attribute value. Returns `false` when the attribute is
    /// unknown or not queriable (the seed is useless then).
    pub fn add_seed(&mut self, attr_name: &str, value: &str) -> bool {
        self.planner.add_seed(&mut self.state, attr_name, value)
    }

    /// Attaches a streaming [`EventSink`] to the crawl's bus. A sink
    /// attached to a crawl that already has history first receives a
    /// [`CrawlEvent::CrawlResumed`] snapshot so its stream replays to the
    /// same totals.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.bus.add_sink(sink);
    }

    /// Read access to the crawl state (vocabulary, `DB_local`, `L_queried`).
    pub fn state(&self) -> &CrawlState {
        &self.state
    }

    /// Read access to the source handle.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Read access to the metrics registry — every counter the crawl has
    /// folded so far.
    pub fn metrics(&self) -> &crate::metrics::MetricsRegistry {
        self.bus.metrics()
    }

    /// Page requests issued so far (including failed attempts).
    pub fn rounds(&self) -> u64 {
        self.bus.metrics().rounds()
    }

    /// Simulated rounds spent waiting in retry backoff so far.
    pub fn backoff_rounds(&self) -> u64 {
        self.bus.metrics().backoff_rounds()
    }

    /// Simulated rounds lost to source-side latency stalls so far.
    pub fn stall_rounds(&self) -> u64 {
        self.bus.metrics().stall_rounds()
    }

    /// Rounds billed against budgets: requests plus backoff waits plus
    /// stall waits.
    pub fn elapsed_rounds(&self) -> u64 {
        self.bus.metrics().elapsed_rounds()
    }

    /// Consecutive transient-class failures since the last successful page.
    /// Resets to zero on every page that arrives intact. Supervisors sample
    /// this at slice boundaries to drive per-source circuit breakers.
    pub fn fault_streak(&self) -> u32 {
        self.bus.metrics().fault_streak()
    }

    /// Checkpoints persisted by the periodic checkpointing loop so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.bus.metrics().checkpoints_written()
    }

    /// Consumes the crawler and returns its source handle (used by
    /// supervisors that must re-wrap the source for a restarted worker).
    pub fn into_source(self) -> S {
        self.source
    }

    /// The configured round budget, if any.
    pub fn max_rounds(&self) -> Option<u64> {
        self.config.max_rounds
    }

    /// The configured coverage target, if any.
    pub fn target_coverage(&self) -> Option<f64> {
        self.config.target_coverage
    }

    /// Runs the crawl to a stop condition and reports.
    pub fn run(mut self) -> CrawlReport {
        let stop = loop {
            if let Some(reason) = self.budget_stop() {
                break reason;
            }
            match self.step() {
                Some(()) => {}
                None => break StopReason::FrontierExhausted,
            }
        };
        self.into_report(stop)
    }

    /// Finalizes the crawl at its current state without issuing further
    /// queries (used by drivers that call [`Crawler::step`] themselves, like
    /// the fleet coordinator). Emits [`CrawlEvent::CrawlFinished`] and
    /// derives the report from the registry.
    pub fn into_report(mut self, stop: StopReason) -> CrawlReport {
        self.bus.emit(CrawlEvent::CrawlFinished { stop, coverage: self.state.coverage() });
        self.bus.metrics().report().expect("CrawlFinished was just emitted")
    }

    fn budget_stop(&self) -> Option<StopReason> {
        if self.config.cancel.as_ref().is_some_and(crate::source::CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        let metrics = self.bus.metrics();
        if let Some(max) = self.config.max_rounds {
            if metrics.elapsed_rounds() >= max {
                return Some(StopReason::RoundBudget);
            }
        }
        if let Some(max) = self.config.max_queries {
            if metrics.queries() >= max {
                return Some(StopReason::QueryBudget);
            }
        }
        if let (Some(target), Some(cov)) = (self.config.target_coverage, self.state.coverage()) {
            if cov >= target {
                return Some(StopReason::CoverageReached);
            }
        }
        None
    }

    /// Issues one query through the staged pipeline — plan, execute, ingest,
    /// then the driver's bookkeeping. Returns `None` when seeds and frontier
    /// are both exhausted.
    pub fn step(&mut self) -> Option<()> {
        if self.journal.as_ref().is_some_and(|j| !j.has_base()) {
            let base = self.checkpoint();
            // Journal persistence failures never kill the crawl, mirroring
            // checkpoint-store semantics; the crawl proceeds unjournaled.
            if self.journal.as_mut().expect("presence checked").write_base(&base).is_err() {
                self.journal = None;
            }
        }
        let planned = self.planner.plan(&mut self.state, &self.ingestor, &mut self.bus)?;
        let local_before =
            planned.candidate.map(|v| u64::from(self.state.local.count(v))).unwrap_or(0);
        let exec = self.executor.run(
            &self.source,
            &planned.query,
            local_before,
            &mut self.state,
            &mut self.ingestor,
            &mut self.bus,
        );
        for &d in &exec.newly_discovered {
            self.planner.notify_discovered(&self.state, d);
        }
        match planned.candidate {
            Some(v) if exec.outcome.failed_transient && self.try_requeue(v) => {
                // The attempt is billed (rounds, a query, a trace point) but
                // the candidate goes back on the frontier instead of being
                // treated as answered: the records behind it are not lost to
                // the fault burst that swallowed this attempt.
                self.finish_query(None, exec.outcome);
            }
            candidate => self.finish_query(candidate, exec.outcome),
        }
        Some(())
    }

    /// Puts `v` back on the frontier after a total transient failure, if its
    /// requeue budget allows. Returns whether the requeue happened.
    fn try_requeue(&mut self, v: ValueId) -> bool {
        let n = self.requeues.entry(v).or_insert(0);
        if *n >= self.config.max_requeues {
            return false;
        }
        *n += 1;
        // The candidate was pushed onto `L_queried` at selection time and no
        // other query completes in between, so it is still the tail: popping
        // is O(1) and order-preserving. The swap_remove fallback keeps the
        // bookkeeping correct should a future driver interleave queries.
        if self.state.queried.last() == Some(&v) {
            self.state.queried.pop();
        } else if let Some(pos) = self.state.queried.iter().rposition(|&q| q == v) {
            self.state.queried.swap_remove(pos);
        }
        self.state.status[v.index()] = CandStatus::Frontier;
        self.planner.notify_discovered(&self.state, v);
        self.bus.emit(CrawlEvent::QueryRequeued { candidate: v.0 });
        true
    }

    /// Book-keeping shared by candidate queries and seed-group queries.
    fn finish_query(&mut self, v: Option<ValueId>, outcome: QueryOutcome) {
        self.state.push_harvest(outcome.normalized_harvest_rate(self.state.page_size));
        self.bus.emit(CrawlEvent::QueryCompleted);
        if let Some(v) = v {
            self.planner.on_query_done(&self.state, v, &outcome);
        }
        if let Some(journal) = self.journal.as_mut() {
            let (rounds, queries) = (self.bus.metrics().rounds(), self.bus.metrics().queries());
            if journal.append_delta(&self.state, rounds, queries).is_err() {
                self.journal = None;
            }
        }
        self.maybe_checkpoint();
    }

    /// Persists a periodic checkpoint when a store is configured and the
    /// cadence is due. The cadence check runs before any snapshot is built,
    /// and the store is borrowed, never cloned. Persistence failures never
    /// kill the crawl — they are tallied as [`CrawlEvent::CheckpointFailed`]
    /// and the previous on-disk generation stays valid.
    fn maybe_checkpoint(&mut self) {
        if self.config.checkpoint_store.is_none() {
            return;
        }
        let every = self.config.checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY).max(1);
        if !self.bus.metrics().queries().is_multiple_of(every) {
            return;
        }
        let snapshot = self.checkpoint();
        let saved = self
            .config
            .checkpoint_store
            .as_ref()
            .expect("presence checked above")
            .save_with_receipt(&snapshot);
        if saved.is_ok() {
            // The snapshot is durable elsewhere: rebase the journal onto it
            // and drop the deltas it absorbed.
            if let Some(journal) = self.journal.as_mut() {
                if journal.write_base(&snapshot).is_err() {
                    self.journal = None;
                }
            }
        }
        self.bus.emit(match saved {
            Ok(receipt) => CrawlEvent::CheckpointWritten { rotated_backup: receipt.rotated_backup },
            Err(_) => CrawlEvent::CheckpointFailed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetryPolicy;
    use crate::policy::PolicyKind;
    use crate::source::FaultySource;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};

    fn figure1_server(page_size: usize) -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), page_size);
        WebDbServer::new(t, spec)
    }

    fn run_policy(kind: PolicyKind, page_size: usize) -> CrawlReport {
        let server = figure1_server(page_size);
        let config = CrawlConfig::builder().known_target_size(5).build().unwrap();
        let mut crawler = Crawler::new(&server, kind.build(), config);
        assert!(crawler.add_seed("A", "a2"));
        crawler.run()
    }

    #[test]
    fn every_policy_harvests_the_whole_figure1_database() {
        for kind in [
            PolicyKind::Bfs,
            PolicyKind::Dfs,
            PolicyKind::Random(7),
            PolicyKind::GreedyLink,
            PolicyKind::Mmmi(Default::default()),
        ] {
            let report = run_policy(kind.clone(), 10);
            assert_eq!(report.records, 5, "{} must reach all records", kind.label());
            assert_eq!(report.stop, StopReason::FrontierExhausted);
            assert_eq!(report.final_coverage, Some(1.0));
        }
    }

    #[test]
    fn example_2_1_first_query_sees_three_records() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.step().unwrap();
        assert_eq!(crawler.state().local.num_records(), 3);
        assert_eq!(crawler.rounds(), 1);
        // Decomposition discovered b2, c1, c2, b3 (a2 is queried).
        assert_eq!(crawler.state().vocab.len(), 5);
    }

    #[test]
    fn wire_and_html_modes_equal_in_process_mode() {
        let run = |prober| {
            let server = figure1_server(2);
            let config = CrawlConfig::builder().prober(prober).build().unwrap();
            let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            crawler.add_seed("A", "a2");
            let report = crawler.run();
            (report.records, report.rounds, report.queries)
        };
        let baseline = run(ProberMode::InProcess);
        assert_eq!(baseline, run(ProberMode::Wire));
        assert_eq!(baseline, run(ProberMode::Html));
    }

    #[test]
    fn rounds_match_cost_model() {
        // Page size 1: querying a2 (3 matches) costs 3 rounds.
        let server = figure1_server(1);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.step().unwrap();
        assert_eq!(crawler.rounds(), 3);
        assert_eq!(crawler.rounds(), DataSource::rounds_used(crawler.source()));
    }

    #[test]
    fn round_budget_stops_mid_query() {
        let server = figure1_server(1);
        let config = CrawlConfig::builder().max_rounds(2).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::RoundBudget);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn query_budget_respected() {
        let server = figure1_server(10);
        let config = CrawlConfig::builder().max_queries(1).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::QueryBudget);
        assert_eq!(report.queries, 1);
    }

    #[test]
    fn coverage_target_stops_early() {
        let server = figure1_server(10);
        let config =
            CrawlConfig::builder().known_target_size(5).target_coverage(0.6).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::CoverageReached);
        assert!(report.records >= 3);
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(2));
        let config = CrawlConfig::builder().max_retries(3).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.records, 5, "faults must not lose records");
        assert!(report.transient_failures > 0);
        assert!(report.rounds > report.queries, "failed rounds are counted");
        assert!(report.backoff_rounds > 0, "retries wait before re-asking");
    }

    #[test]
    fn faulty_source_decorator_behaves_like_builtin_faults() {
        let run_with = |decorated: bool| {
            let t = figure1_table();
            let spec = InterfaceSpec::permissive(t.schema(), 10);
            let config = CrawlConfig::builder().max_retries(3).build().unwrap();
            let report = if decorated {
                let source = FaultySource::new(WebDbServer::new(t, spec), FaultPolicy::every(2));
                let mut crawler = Crawler::new(source, PolicyKind::Bfs.build(), config);
                crawler.add_seed("A", "a2");
                crawler.run()
            } else {
                let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(2));
                let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
                crawler.add_seed("A", "a2");
                crawler.run()
            };
            (report.records, report.rounds, report.transient_failures)
        };
        assert_eq!(run_with(true), run_with(false));
    }

    #[test]
    fn backoff_counts_against_round_budget() {
        // Every request fails; generous retries but a tiny round budget. The
        // budget must stop the crawl even though no page ever arrives.
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(1));
        let config = CrawlConfig::builder()
            .max_rounds(10)
            .retry(RetryPolicy {
                max_retries: 100,
                backoff_base: 1,
                backoff_cap: 8,
                ..Default::default()
            })
            .build()
            .unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::RoundBudget);
        assert!(report.elapsed_rounds() >= 10);
        assert!(
            report.rounds < 10,
            "backoff waits, not just requests, must fill the budget: {} requests",
            report.rounds
        );
    }

    #[test]
    fn keyword_mode_crawls_through_the_keyword_box() {
        let server = figure1_server(10);
        let config = CrawlConfig::builder().query_mode(QueryMode::Keyword).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        assert!(crawler.add_seed("A", "a2"));
        let report = crawler.run();
        assert_eq!(report.records, 5, "keyword crawling reaches everything too");
    }

    #[test]
    fn keyword_mode_unlocks_form_locked_attributes() {
        let run = |mode: QueryMode| {
            let t = figure1_table();
            let mut spec2 = InterfaceSpec::permissive(t.schema(), 10);
            spec2.queriable_attrs.retain(|&a| a == dwc_model::AttrId(2));
            let server = WebDbServer::new(t, spec2);
            let config = CrawlConfig { query_mode: mode, ..Default::default() };
            let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            crawler.add_seed("C", "c1");
            crawler.run()
        };
        // Structured: only C-values can be issued. c1 retrieves records 0–1,
        // whose decomposition yields no further C value (c2 appears only in
        // records it cannot reach) — the crawl is stuck at 2 records.
        let structured = run(QueryMode::Structured);
        assert_eq!(structured.records, 2);
        // Keyword: every discovered value (a*, b*, c*) is usable — a2 bridges
        // to c2's records and the whole database is harvested. This is
        // §2.2's "fading schema opens exciting opportunities" in action.
        let keyword = run(QueryMode::Keyword);
        assert_eq!(keyword.records, 5);
    }

    #[test]
    fn conjunctive_mode_crawls_restrictive_forms() {
        // The form demands two filled fields; the keyword box is gone.
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10).requiring_attrs(2);
        let server = WebDbServer::new(t, spec);
        let config = CrawlConfig::builder()
            .query_mode(QueryMode::Conjunctive { arity: 2 })
            .known_target_size(5)
            .build()
            .unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
        crawler.add_seed_group(&[("A", "a2"), ("B", "b2")]);
        let report = crawler.run();
        // The seed pair a2 ∧ b2 retrieves records 1–2; follow-up conjunctive
        // queries keep harvesting, but conjunctions are restrictive — full
        // coverage is NOT guaranteed (which is exactly why the paper's case
        // study flags multi-attribute-only sources as hard to crawl).
        assert!(report.records >= 2, "seed group must land");
        assert!(report.queries > 1, "policy-driven conjunctive queries must follow");
    }

    #[test]
    fn conjunctive_covers_less_than_single_attribute_crawling() {
        let run = |mode: QueryMode, restrictive: bool| {
            let t = figure1_table();
            let mut spec = InterfaceSpec::permissive(t.schema(), 10);
            if restrictive {
                spec = spec.requiring_attrs(2);
            }
            let server = WebDbServer::new(t, spec);
            let config = CrawlConfig { query_mode: mode, ..Default::default() };
            let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            if restrictive {
                crawler.add_seed_group(&[("A", "a2"), ("B", "b2")]);
            } else {
                crawler.add_seed("A", "a2");
            }
            crawler.run().records
        };
        let single = run(QueryMode::Structured, false);
        let conjunctive = run(QueryMode::Conjunctive { arity: 2 }, true);
        assert_eq!(single, 5);
        assert!(conjunctive <= single);
    }

    #[test]
    #[should_panic(expected = "keyword query mode requires")]
    fn keyword_mode_requires_keyword_interface() {
        let t = figure1_table();
        let mut spec = InterfaceSpec::permissive(t.schema(), 10);
        spec.keyword_search = false;
        let server = WebDbServer::new(t, spec);
        let config = CrawlConfig { query_mode: QueryMode::Keyword, ..Default::default() };
        let _ = Crawler::new(&server, PolicyKind::Bfs.build(), config);
    }

    #[test]
    fn bad_seed_rejected() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        assert!(!crawler.add_seed("Nope", "x"));
        let report = crawler.run();
        assert_eq!(report.stop, StopReason::FrontierExhausted);
        assert_eq!(report.records, 0);
    }

    #[test]
    fn seed_that_matches_nothing_still_costs_a_round() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        assert!(crawler.add_seed("A", "does-not-exist"));
        let report = crawler.run();
        assert_eq!(report.rounds, 1);
        assert_eq!(report.records, 0);
        assert_eq!(report.queries, 1);
    }

    #[test]
    fn duplicate_records_not_double_counted() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.add_seed("C", "c2");
        let report = crawler.run();
        assert_eq!(report.records, 5, "overlapping queries must dedup");
    }

    #[test]
    fn checkpoint_resume_completes_like_uninterrupted_run() {
        // Uninterrupted baseline.
        let server = figure1_server(2);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        let baseline = crawler.run();

        // Interrupted run: two queries, checkpoint through the text format,
        // resume with a fresh server and policy, finish.
        let server1 = figure1_server(2);
        let mut crawler1 = Crawler::new(&server1, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler1.add_seed("A", "a2");
        crawler1.step().unwrap();
        crawler1.step().unwrap();
        let text = crawler1.checkpoint().to_text();
        drop(crawler1);

        let cp = crate::checkpoint::Checkpoint::from_text(&text).unwrap();
        let server2 = figure1_server(2);
        let crawler2 =
            Crawler::resume(&server2, PolicyKind::Bfs.build(), &cp, CrawlConfig::default());
        let resumed = crawler2.run();

        assert_eq!(resumed.records, baseline.records);
        // BFS frontier order is id order = discovery order, so the resumed
        // run issues exactly the remaining queries: total cost matches.
        assert_eq!(resumed.rounds, baseline.rounds);
        assert_eq!(resumed.queries, baseline.queries);
    }

    #[test]
    fn checkpoint_resume_works_for_domain_policy() {
        use crate::domain_table::DomainTable;
        use std::sync::Arc;
        let dm = Arc::new(DomainTable::build(figure1_table()));
        let kind = PolicyKind::Domain(Arc::clone(&dm));
        let config = || CrawlConfig { known_target_size: Some(5), ..Default::default() };

        let server1 = figure1_server(10);
        let mut crawler1 = Crawler::new(&server1, kind.build(), config());
        crawler1.add_seed("A", "a2");
        crawler1.step().unwrap();
        let cp = crawler1.checkpoint();
        drop(crawler1);

        let server2 = figure1_server(10);
        let crawler2 = Crawler::resume(&server2, kind.build(), &cp, config());
        let resumed = crawler2.run();
        assert_eq!(resumed.records, 5, "DM resume must still reach everything");
        assert_eq!(resumed.final_coverage, Some(1.0));
    }

    #[test]
    fn checkpoint_counters_carry_over() {
        let server = figure1_server(1);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.step().unwrap(); // 3 matches at page size 1 → 3 rounds
        let cp = crawler.checkpoint();
        assert_eq!(cp.rounds, 3);
        assert_eq!(cp.queries, 1);
        assert_eq!(cp.records.len(), 3);
        drop(crawler);
        let server2 = figure1_server(1);
        let crawler2 =
            Crawler::resume(&server2, PolicyKind::Bfs.build(), &cp, CrawlConfig::default());
        assert_eq!(crawler2.rounds(), 3);
        assert_eq!(crawler2.state().local.num_records(), 3);
    }

    #[test]
    fn trace_is_recorded_per_query() {
        let server = figure1_server(10);
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        assert_eq!(report.trace.points().len() as u64, report.queries);
        let last = report.trace.last().unwrap();
        assert_eq!(last.records, report.records);
        assert_eq!(last.rounds, report.rounds);
    }

    #[test]
    fn attached_sink_replays_to_the_returned_report() {
        use crate::events::MemorySink;
        use crate::metrics::replay_report;
        let server = figure1_server(2);
        let config = CrawlConfig::builder().max_retries(2).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        let sink = MemorySink::new();
        crawler.add_sink(Box::new(sink.clone()));
        crawler.add_seed("A", "a2");
        let report = crawler.run();
        let events = sink.collected();
        assert_eq!(replay_report(&events), Some(report));
    }

    #[test]
    fn requeued_candidate_survives_a_checkpoint_round_trip() {
        use crate::events::MemorySink;
        // One fault total: the first query fails entirely (fail-fast retry
        // default) and its candidate is requeued.
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(1).up_to(1));
        let config = CrawlConfig::builder().known_target_size(5).max_requeues(5).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config.clone());
        assert!(crawler.add_seed("A", "a2"));
        let sink = MemorySink::new();
        crawler.add_sink(Box::new(sink.clone()));
        crawler.step().unwrap();
        assert!(
            sink.collected().iter().any(|e| matches!(e, CrawlEvent::QueryRequeued { .. })),
            "the failed attempt must requeue its candidate"
        );
        assert!(crawler.state().queried.is_empty(), "the requeued candidate must leave L_queried");

        // The requeue must survive the text checkpoint format: the resumed
        // crawl re-selects the value and still harvests everything.
        let text = crawler.checkpoint().to_text();
        drop(crawler);
        let cp = crate::checkpoint::Checkpoint::from_text(&text).unwrap();
        let resumed = Crawler::resume(&server, PolicyKind::Bfs.build(), &cp, config).run();
        assert_eq!(resumed.records, 5, "nothing behind the requeued value may be lost");
        assert_eq!(resumed.final_coverage, Some(1.0));
    }
}
