//! Shared crawl state: the crawler-side vocabulary, candidate statuses,
//! `L_queried`, and the statistics the Query Selector reads.
//!
//! Section 2.5 of the paper: "The Query Selector implements three internal
//! data structures: L_to-query, L_queried, and a statistics table." Here the
//! statistics table is [`LocalDb`] plus the per-value status array;
//! `L_to-query` lives inside each policy (its organization *is* the policy —
//! queue, stack, heap, …), while `L_queried` and the vocabulary are shared.

use crate::local::LocalDb;
use dwc_model::{AttrId, ValueId, ValueInterner};
use std::collections::VecDeque;

/// Lifecycle of a candidate attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandStatus {
    /// Known only from a domain statistics table; never seen in the target.
    /// Only the DM policy may select such values (its Q_DT pool).
    Undiscovered,
    /// Seen in harvested results and waiting in `L_to-query`.
    Frontier,
    /// Already issued as a query (member of `L_queried`).
    Queried,
}

/// Outcome of one completed query, passed to the policy.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Result pages fetched (communication rounds spent on this query).
    pub pages: u64,
    /// Records returned that were new to `DB_local`.
    pub new_records: u64,
    /// Records returned in total (including duplicates).
    pub returned_records: u64,
    /// Total match count reported by the source, if any.
    pub reported_total: Option<usize>,
    /// Whether the abortion heuristic cut the query short.
    pub aborted: bool,
    /// Whether the query failed *entirely* on transient-class errors: zero
    /// pages retrieved, every attempt lost to faults. Such queries are
    /// eligible for requeueing ([`crate::CrawlConfig::max_requeues`]).
    pub failed_transient: bool,
    /// Distinct values occurring in the *new* records of this query
    /// (both newly discovered and previously known): the values whose local
    /// statistics (counts, degrees) may have changed.
    pub touched_values: Vec<ValueId>,
}

impl QueryOutcome {
    /// Normalized harvest rate: new records per retrieved record slot,
    /// in `[0, 1]` (Definition 2.5 divided by `k`).
    pub fn normalized_harvest_rate(&self, page_size: usize) -> f64 {
        if self.pages == 0 {
            return 0.0;
        }
        self.new_records as f64 / (self.pages as f64 * page_size as f64)
    }
}

/// Shared crawl state readable by every policy.
#[derive(Debug)]
pub struct CrawlState {
    /// Crawler-side vocabulary: `(attribute, value string) → ValueId`.
    /// This id space is private to the crawler — not the server's.
    pub vocab: ValueInterner,
    /// Attribute names in interface order (index = `AttrId`).
    pub attr_names: Vec<String>,
    /// Whether each attribute is queriable through the interface.
    pub attr_queriable: Vec<bool>,
    /// Page size `k` advertised by the interface.
    pub page_size: usize,
    /// Per-value candidate status (indexed by `ValueId`).
    pub status: Vec<CandStatus>,
    /// `L_queried`, in issue order.
    pub queried: Vec<ValueId>,
    /// The local database / statistics table.
    pub local: LocalDb,
    /// Normalized harvest rates of the most recent queries (for saturation
    /// detection), newest last; bounded length.
    pub recent_harvest: VecDeque<f64>,
    /// Known target size, when the harness provides it (controlled
    /// experiments); lets policies and stop conditions compute true coverage.
    pub target_size: Option<usize>,
    /// Whether the crawler queries through the keyword box instead of
    /// structured form fields. Keyword search matches every column (§2.2's
    /// "fading schema"), so *all* discovered values become candidates,
    /// including those of attributes with no structured form field.
    pub keyword_mode: bool,
}

/// Maximum number of recent harvest rates retained for saturation detection.
pub const RECENT_HARVEST_WINDOW: usize = 64;

impl CrawlState {
    /// Fresh state for an interface with the given attribute names and
    /// queriability flags.
    pub fn new(attr_names: Vec<String>, attr_queriable: Vec<bool>, page_size: usize) -> Self {
        assert_eq!(attr_names.len(), attr_queriable.len());
        CrawlState {
            vocab: ValueInterner::new(),
            attr_names,
            attr_queriable,
            page_size,
            status: Vec::new(),
            queried: Vec::new(),
            local: LocalDb::new(),
            recent_harvest: VecDeque::with_capacity(RECENT_HARVEST_WINDOW),
            target_size: None,
            keyword_mode: false,
        }
    }

    /// Interns a value into the crawler vocabulary, extending the status
    /// array; newly created ids start as [`CandStatus::Undiscovered`].
    pub fn intern(&mut self, attr: AttrId, s: &str) -> ValueId {
        let id = self.vocab.intern(attr, s);
        if id.index() >= self.status.len() {
            self.status.resize(id.index() + 1, CandStatus::Undiscovered);
        }
        id
    }

    /// Batch-interns one record's `(attribute, value)` fields through the
    /// vocabulary's single-hash path ([`ValueInterner::intern_page`]),
    /// appending the ids to `out` and extending the status array; newly
    /// created ids start as [`CandStatus::Undiscovered`].
    pub fn intern_page<'a, I>(&mut self, fields: I, out: &mut Vec<ValueId>)
    where
        I: IntoIterator<Item = (AttrId, &'a str)>,
    {
        self.vocab.intern_page(fields, out);
        if self.vocab.len() > self.status.len() {
            self.status.resize(self.vocab.len(), CandStatus::Undiscovered);
        }
    }

    /// Resolves an attribute name to its id.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attr_names.iter().position(|n| n == name).map(|i| AttrId(i as u16))
    }

    /// Whether the value can be used as a query: through its attribute's
    /// structured form field, or through the keyword box (which searches all
    /// columns) when the crawler operates in keyword mode.
    pub fn is_queriable(&self, v: ValueId) -> bool {
        self.keyword_mode || self.attr_queriable[self.vocab.attr_of(v).0 as usize]
    }

    /// Current status of a value.
    #[inline]
    pub fn status_of(&self, v: ValueId) -> CandStatus {
        self.status[v.index()]
    }

    /// Records a completed query's harvest rate for saturation detection.
    pub fn push_harvest(&mut self, hr: f64) {
        if self.recent_harvest.len() == RECENT_HARVEST_WINDOW {
            self.recent_harvest.pop_front();
        }
        self.recent_harvest.push_back(hr);
    }

    /// Mean of the recent harvest rates over the last `window` queries;
    /// `None` until `window` queries have completed.
    pub fn recent_harvest_mean(&self, window: usize) -> Option<f64> {
        if window == 0 || self.recent_harvest.len() < window {
            return None;
        }
        let sum: f64 = self.recent_harvest.iter().rev().take(window).sum();
        Some(sum / window as f64)
    }

    /// True coverage (`|DB_local| / |DB|`) when the target size is known.
    pub fn coverage(&self) -> Option<f64> {
        self.target_size.map(
            |n| {
                if n == 0 {
                    1.0
                } else {
                    self.local.num_records() as f64 / n as f64
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> CrawlState {
        CrawlState::new(vec!["A".into(), "B".into()], vec![true, false], 10)
    }

    #[test]
    fn intern_extends_status() {
        let mut st = tiny_state();
        let v = st.intern(AttrId(0), "x");
        assert_eq!(st.status_of(v), CandStatus::Undiscovered);
        assert_eq!(st.status.len(), 1);
    }

    #[test]
    fn intern_page_batches_and_extends_status() {
        let mut st = tiny_state();
        let mut out = Vec::new();
        st.intern_page([(AttrId(0), "x"), (AttrId(1), "y"), (AttrId(0), "x")], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2], "duplicate field resolves to the same id");
        assert_eq!(st.status.len(), st.vocab.len());
        assert!(out.iter().all(|&v| st.status_of(v) == CandStatus::Undiscovered));
        assert_eq!(st.intern(AttrId(0), "x"), out[0], "agrees with the scalar path");
    }

    #[test]
    fn queriability_follows_attribute() {
        let mut st = tiny_state();
        let a = st.intern(AttrId(0), "x");
        let b = st.intern(AttrId(1), "y");
        assert!(st.is_queriable(a));
        assert!(!st.is_queriable(b));
    }

    #[test]
    fn attr_by_name_resolves() {
        let st = tiny_state();
        assert_eq!(st.attr_by_name("B"), Some(AttrId(1)));
        assert_eq!(st.attr_by_name("C"), None);
    }

    #[test]
    fn harvest_window_is_bounded_and_averaged() {
        let mut st = tiny_state();
        for i in 0..(RECENT_HARVEST_WINDOW + 10) {
            st.push_harvest(i as f64);
        }
        assert_eq!(st.recent_harvest.len(), RECENT_HARVEST_WINDOW);
        // Mean of the last 4 entries: 70, 71, 72, 73.
        let m = st.recent_harvest_mean(4).unwrap();
        assert!((m - 71.5).abs() < 1e-12);
        assert!(st.recent_harvest_mean(0).is_none());
        assert!(st.recent_harvest_mean(1000).is_none());
    }

    #[test]
    fn coverage_requires_target_size() {
        let mut st = tiny_state();
        assert_eq!(st.coverage(), None);
        st.target_size = Some(4);
        st.local.insert(1, vec![]);
        assert_eq!(st.coverage(), Some(0.25));
        st.target_size = Some(0);
        assert_eq!(st.coverage(), Some(1.0));
    }

    #[test]
    fn normalized_harvest_rate_bounds() {
        let o = QueryOutcome { pages: 2, new_records: 15, ..Default::default() };
        assert!((o.normalized_harvest_rate(10) - 0.75).abs() < 1e-12);
        let zero = QueryOutcome::default();
        assert_eq!(zero.normalized_harvest_rate(10), 0.0);
    }
}
