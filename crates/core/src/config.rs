//! Crawl configuration: limits, modes, retry policy, builder validation.
//!
//! Crawl and fleet configurations are built through validating builders
//! ([`CrawlConfig::builder`], [`crate::fleet::FleetConfig::builder`])
//! that reject nonsensical parameters — zero budgets, zero slices,
//! conjunctive arity below 2 — at build time with a [`ConfigError`], instead
//! of panicking (or silently stalling) mid-crawl.

use crate::abort::AbortPolicy;
use crate::source::{CancelToken, ProberMode};
use std::path::PathBuf;
use std::time::Duration;

/// Retry behaviour on transient page-request failures.
///
/// A real crawler that gets throttled waits before retrying; waiting costs
/// wall-clock time that the simulation bills as *backoff rounds*. The
/// schedule is deterministic exponential backoff: before retry attempt `k`
/// (1-based) the crawler waits `backoff_base · 2^(k−1)` simulated rounds,
/// capped at `backoff_cap`. Backoff rounds count against round budgets
/// (Definition 2.3 bills time, not just served pages) but are not server
/// requests — the source's own counter only grows by real attempts.
///
/// **The default is `max_retries: 0` — fail fast.** A bare
/// [`crate::CrawlConfig`] abandons a page on its first transient error;
/// only the total-failure requeue path
/// ([`crate::CrawlConfig::max_requeues`]) gives the query another chance.
/// Set retries explicitly for any fault-prone source
/// ([`crate::crawler::CrawlConfigBuilder::max_retries`]); fleet runners
/// substitute [`crate::fleet::FleetConfig::default_retry`] into jobs left
/// on this default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per page after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated rounds.
    pub backoff_base: u64,
    /// Upper bound on a single backoff wait, in simulated rounds.
    pub backoff_cap: u64,
    /// Jitter seed. `None` keeps the exact exponential schedule; `Some(s)`
    /// draws each wait uniformly from `[1, exponential]`, decorrelating
    /// retry storms across clients that share a fault (see
    /// [`backoff_jittered`](RetryPolicy::backoff_jittered)).
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 0, backoff_base: 1, backoff_cap: 64, jitter_seed: None }
    }
}

impl RetryPolicy {
    /// A policy with `n` retries and the default backoff schedule.
    pub fn retries(n: u32) -> Self {
        RetryPolicy { max_retries: n, ..Default::default() }
    }

    /// The same policy with jittered backoff seeded by `seed` (typically the
    /// crawl seed, so the schedule is deterministic per crawl).
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Simulated rounds to wait before retry attempt `attempt` (1-based),
    /// on the exact exponential schedule (ignores jitter). Attempt 0 is the
    /// initial request: no wait.
    pub fn backoff_before(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = (attempt - 1).min(63);
        self.backoff_base.saturating_mul(1u64 << exp).min(self.backoff_cap)
    }

    /// Jittered backoff before retry `attempt`: with a jitter seed, a
    /// deterministic draw from `[1, backoff_before(attempt)]` keyed on
    /// `(seed, salt, attempt)` — same seed and salt, same schedule; clients
    /// retrying the same fault with different salts (e.g. their elapsed
    /// round counts) spread out instead of hammering in lockstep. Without a
    /// seed this is exactly [`backoff_before`](RetryPolicy::backoff_before).
    pub fn backoff_jittered(&self, attempt: u32, salt: u64) -> u64 {
        let exact = self.backoff_before(attempt);
        match self.jitter_seed {
            None => exact,
            Some(seed) if exact > 1 => {
                let draw = crate::fault::splitmix64(
                    seed ^ salt.rotate_left(17)
                        ^ u64::from(attempt).wrapping_mul(crate::fault::SPLITMIX_STEP),
                );
                1 + draw % exact
            }
            Some(_) => exact,
        }
    }
}

/// A configuration rejected at build time.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A budget or slice parameter was zero where positive is required.
    ZeroBudget(&'static str),
    /// Conjunctive query mode needs at least two predicates per query.
    BadArity(usize),
    /// A coverage target outside `(0, 1]`.
    BadCoverage(f64),
    /// A coverage target without a known target size can never fire.
    CoverageNeedsTargetSize,
    /// A serving-tier queue bound of zero can never admit a request.
    ZeroQueueDepth,
    /// A zero deadline would cancel every request at admission.
    ZeroDeadline,
    /// A client pool needs at least one connection.
    ZeroConnections,
    /// A tenant with zero weight can never be granted rounds under
    /// weighted-fair allocation.
    ZeroTenantWeight(u32),
    /// A tenant quota of zero rounds parks the tenant before it ever runs.
    ZeroTenantQuota(u32),
    /// Two tenants in the registry share the same id.
    DuplicateTenant(u32),
    /// A job references a tenant id absent from the registry.
    UnknownTenant(u32),
    /// A fleet defines a tenant registry but a job names no tenant.
    MissingTenant,
    /// A memory budget of zero megabytes cannot size a buffer pool or page
    /// cache.
    ZeroMemBudget,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBudget(what) => write!(f, "{what} must be positive"),
            ConfigError::BadArity(n) => {
                write!(f, "conjunctive arity must be at least 2, got {n}")
            }
            ConfigError::BadCoverage(c) => {
                write!(f, "target coverage must lie in (0, 1], got {c}")
            }
            ConfigError::CoverageNeedsTargetSize => {
                write!(f, "a coverage target requires known_target_size")
            }
            ConfigError::ZeroQueueDepth => {
                write!(f, "serving queue depth must be positive")
            }
            ConfigError::ZeroDeadline => {
                write!(f, "a request deadline must be positive")
            }
            ConfigError::ZeroConnections => {
                write!(f, "a client pool needs at least one connection")
            }
            ConfigError::ZeroTenantWeight(id) => {
                write!(f, "tenant {id} has zero weight and would never be scheduled")
            }
            ConfigError::ZeroTenantQuota(id) => {
                write!(f, "tenant {id} has a zero round quota and would never run")
            }
            ConfigError::DuplicateTenant(id) => {
                write!(f, "tenant id {id} appears more than once in the registry")
            }
            ConfigError::UnknownTenant(id) => {
                write!(f, "job references tenant {id}, which is not in the registry")
            }
            ConfigError::MissingTenant => {
                write!(f, "the fleet defines a tenant registry but a job names no tenant")
            }
            ConfigError::ZeroMemBudget => {
                write!(f, "memory budget must be at least 1 MiB")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How queries are submitted to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Fill the value into its attribute's structured form field
    /// (`Query::ByString`). Requires the attribute to be queriable.
    #[default]
    Structured,
    /// Throw the bare value string into the keyword box (`Query::Keyword`)
    /// and "rely on the end site's query processing mechanism to decide which
    /// column that value should actually match" (§2.2). Requires the
    /// interface to advertise keyword search; makes every discovered value a
    /// candidate, even from attributes without a form field.
    Keyword,
    /// Multi-attribute form fill: the selected candidate value is combined
    /// with its most co-occurring locally-known partner values from `arity−1`
    /// *other* attributes into a [`dwc_server::Query::Conjunctive`]. This is
    /// the query class the paper defers to future work; restrictive sources
    /// (`InterfaceSpec::requiring_attrs`) only accept it. Seeds must be
    /// provided as whole groups via [`crate::Crawler::add_seed_group`].
    Conjunctive {
        /// Number of equality predicates per query (≥ 2).
        arity: usize,
    },
}

/// Checkpoint cadence (in completed queries) used when a store is configured
/// without an explicit [`CrawlConfig::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 32;

/// Crawl limits and knobs.
///
/// Prefer [`CrawlConfig::builder`], which validates parameters at build
/// time; the struct literal form remains available for tests that want an
/// intentionally odd configuration.
///
/// Note the retry default: [`RetryPolicy::default`] has `max_retries: 0`, so
/// a bare `CrawlConfig` **fails fast on the first transient error** of a
/// page (the total-failure requeue path is the only second chance). Any
/// crawl against a source that can throttle should set
/// [`CrawlConfigBuilder::max_retries`] (fleets apply
/// [`crate::fleet::FleetConfig::default_retry`] automatically).
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Stop after this many elapsed rounds — page requests plus retry
    /// backoff waits (Figures 5–6 use 10,000).
    pub max_rounds: Option<u64>,
    /// Stop after this many queries.
    pub max_queries: Option<u64>,
    /// Stop when true coverage reaches this fraction (requires
    /// `known_target_size`; Figure 3 uses 0.9).
    pub target_coverage: Option<f64>,
    /// The target's true size, when the harness knows it (controlled
    /// experiments).
    pub known_target_size: Option<usize>,
    /// Per-query abortion heuristics (§3.4).
    pub abort: AbortPolicy,
    /// Transient-failure retry schedule (each attempt costs a round; waits
    /// between attempts cost backoff rounds).
    pub retry: RetryPolicy,
    /// How many times a query that failed *entirely* on transient-class
    /// errors (zero pages retrieved) is put back on the frontier for a later
    /// attempt, per value. Keeps a burst of failures from permanently losing
    /// the records behind the affected candidates.
    pub max_requeues: u32,
    /// Prober mode.
    pub prober: ProberMode,
    /// Query submission mode (structured form fill vs keyword box).
    pub query_mode: QueryMode,
    /// Where periodic checkpoints are persisted. `None` disables periodic
    /// checkpointing (manual [`crate::Crawler::checkpoint`] still works).
    pub checkpoint_store: Option<crate::store::CheckpointStore>,
    /// Snapshot cadence in completed queries, when a store is set; `None`
    /// uses [`DEFAULT_CHECKPOINT_EVERY`].
    pub checkpoint_every: Option<u64>,
    /// Where the per-query state journal is appended
    /// ([`crate::journal::StateJournal`]). `None` disables journaling.
    /// When combined with a checkpoint store, every successful periodic
    /// checkpoint rebases and truncates the journal.
    pub journal_path: Option<PathBuf>,
    /// Shared memory budget, in MiB, for out-of-core serving: the driver
    /// splits it between the segment-store buffer pool and the server's
    /// rendered-page cache (see `dwc_store::MemoryBudget`). `None` keeps the
    /// fully resident defaults.
    pub mem_budget_mb: Option<u64>,
    /// Per-request deadline: each page request's [`crate::SourceRequest`]
    /// carries `now + deadline` as its absolute deadline. In-process sources
    /// answer instantly and ignore it; a [`crate::serve::SourceService`]
    /// cancels (and bills) requests still queued past it.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation for the whole crawl: when the token fires,
    /// the executor stops submitting requests and the driver finalizes the
    /// report with [`crate::StopReason::Cancelled`].
    pub cancel: Option<CancelToken>,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            max_rounds: None,
            max_queries: None,
            target_coverage: None,
            known_target_size: None,
            abort: AbortPolicy::default(),
            retry: RetryPolicy::default(),
            max_requeues: 4,
            prober: ProberMode::default(),
            query_mode: QueryMode::default(),
            checkpoint_store: None,
            checkpoint_every: None,
            journal_path: None,
            mem_budget_mb: None,
            deadline: None,
            cancel: None,
        }
    }
}

impl CrawlConfig {
    /// Starts building a validated configuration.
    pub fn builder() -> CrawlConfigBuilder {
        CrawlConfigBuilder { config: CrawlConfig::default() }
    }
}

/// Builder for [`CrawlConfig`]; see [`CrawlConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct CrawlConfigBuilder {
    config: CrawlConfig,
}

impl CrawlConfigBuilder {
    /// Caps elapsed rounds (requests + backoff waits). Must be positive.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.config.max_rounds = Some(rounds);
        self
    }

    /// Caps issued queries. Must be positive.
    pub fn max_queries(mut self, queries: u64) -> Self {
        self.config.max_queries = Some(queries);
        self
    }

    /// Stops once true coverage reaches `fraction` (in `(0, 1]`); requires
    /// [`known_target_size`](Self::known_target_size).
    pub fn target_coverage(mut self, fraction: f64) -> Self {
        self.config.target_coverage = Some(fraction);
        self
    }

    /// Declares the target's true size (controlled experiments).
    pub fn known_target_size(mut self, records: usize) -> Self {
        self.config.known_target_size = Some(records);
        self
    }

    /// Sets the per-query abortion heuristics.
    pub fn abort(mut self, abort: AbortPolicy) -> Self {
        self.config.abort = abort;
        self
    }

    /// Sets the transient-failure retry schedule.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Shorthand: `n` retries with the default backoff schedule.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.retry.max_retries = n;
        self
    }

    /// Seeds jittered retry backoff (typically with the crawl seed):
    /// deterministic per seed, decorrelated across clients. See
    /// [`RetryPolicy::backoff_jittered`].
    pub fn retry_jitter(mut self, seed: u64) -> Self {
        self.config.retry.jitter_seed = Some(seed);
        self
    }

    /// Caps total-failure requeues per value (0 = never requeue).
    pub fn max_requeues(mut self, n: u32) -> Self {
        self.config.max_requeues = n;
        self
    }

    /// Enables periodic checkpointing into `store`.
    pub fn checkpoint_store(mut self, store: crate::store::CheckpointStore) -> Self {
        self.config.checkpoint_store = Some(store);
        self
    }

    /// Sets the checkpoint cadence in completed queries. Must be positive.
    pub fn checkpoint_every(mut self, queries: u64) -> Self {
        self.config.checkpoint_every = Some(queries);
        self
    }

    /// Enables the per-query state journal at `path`.
    pub fn journal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.journal_path = Some(path.into());
        self
    }

    /// Sets the shared out-of-core memory budget in MiB. Must be positive.
    pub fn mem_budget_mb(mut self, mb: u64) -> Self {
        self.config.mem_budget_mb = Some(mb);
        self
    }

    /// Sets the prober mode.
    pub fn prober(mut self, prober: ProberMode) -> Self {
        self.config.prober = prober;
        self
    }

    /// Sets the query submission mode.
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.config.query_mode = mode;
        self
    }

    /// Sets the per-request deadline. Must be positive.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Attaches a crawl-wide cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.config.cancel = Some(token);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<CrawlConfig, ConfigError> {
        let c = &self.config;
        if c.max_rounds == Some(0) {
            return Err(ConfigError::ZeroBudget("max_rounds"));
        }
        if c.max_queries == Some(0) {
            return Err(ConfigError::ZeroBudget("max_queries"));
        }
        if c.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroBudget("checkpoint_every"));
        }
        if let QueryMode::Conjunctive { arity } = c.query_mode {
            if arity < 2 {
                return Err(ConfigError::BadArity(arity));
            }
        }
        if let Some(t) = c.target_coverage {
            if !(t > 0.0 && t <= 1.0) {
                return Err(ConfigError::BadCoverage(t));
            }
            if c.known_target_size.is_none() {
                return Err(ConfigError::CoverageNeedsTargetSize);
            }
        }
        if c.deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        if c.mem_budget_mb == Some(0) {
            return Err(ConfigError::ZeroMemBudget);
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let r =
            RetryPolicy { max_retries: 10, backoff_base: 2, backoff_cap: 9, ..Default::default() };
        assert_eq!(r.backoff_before(0), 0);
        assert_eq!(r.backoff_before(1), 2);
        assert_eq!(r.backoff_before(2), 4);
        assert_eq!(r.backoff_before(3), 8);
        assert_eq!(r.backoff_before(4), 9, "capped");
        assert_eq!(r.backoff_before(100), 9, "huge attempts saturate, no overflow");
    }

    #[test]
    fn jittered_backoff_is_seeded_bounded_and_decorrelated() {
        let base =
            RetryPolicy { max_retries: 8, backoff_base: 4, backoff_cap: 64, jitter_seed: None };
        // No seed: jittered == exact for every attempt and salt.
        for attempt in 0..6 {
            assert_eq!(base.backoff_jittered(attempt, 17), base.backoff_before(attempt));
        }
        let jittered = base.with_jitter(42);
        assert_eq!(jittered.backoff_jittered(0, 0), 0, "attempt 0 never waits");
        let mut varied = false;
        for attempt in 1..=8 {
            let exact = jittered.backoff_before(attempt);
            for salt in 0..16 {
                let wait = jittered.backoff_jittered(attempt, salt);
                assert!((1..=exact).contains(&wait), "jitter stays in [1, exponential]");
                assert_eq!(
                    wait,
                    jittered.backoff_jittered(attempt, salt),
                    "same (seed, salt, attempt) must redraw identically"
                );
                if wait != jittered.backoff_jittered(attempt, salt + 1) {
                    varied = true;
                }
            }
        }
        assert!(varied, "different salts must spread the schedule");
        // Different seeds decorrelate the schedules.
        let other = base.with_jitter(43);
        assert!(
            (1..=8).any(|a| jittered.backoff_jittered(a, 5) != other.backoff_jittered(a, 5)),
            "seeds 42 and 43 should not produce identical schedules"
        );
    }

    #[test]
    fn default_policy_fails_fast() {
        assert_eq!(RetryPolicy::default().max_retries, 0);
        assert_eq!(RetryPolicy::retries(3).max_retries, 3);
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            CrawlConfig::builder().max_rounds(0).build().unwrap_err(),
            ConfigError::ZeroBudget("max_rounds")
        );
        assert_eq!(
            CrawlConfig::builder().max_queries(0).build().unwrap_err(),
            ConfigError::ZeroBudget("max_queries")
        );
        assert_eq!(
            CrawlConfig::builder()
                .query_mode(QueryMode::Conjunctive { arity: 1 })
                .build()
                .unwrap_err(),
            ConfigError::BadArity(1)
        );
        assert_eq!(
            CrawlConfig::builder().known_target_size(5).target_coverage(1.5).build().unwrap_err(),
            ConfigError::BadCoverage(1.5)
        );
        assert_eq!(
            CrawlConfig::builder().target_coverage(0.9).build().unwrap_err(),
            ConfigError::CoverageNeedsTargetSize
        );
        assert_eq!(
            CrawlConfig::builder().deadline(Duration::ZERO).build().unwrap_err(),
            ConfigError::ZeroDeadline
        );
        assert_eq!(
            CrawlConfig::builder().mem_budget_mb(0).build().unwrap_err(),
            ConfigError::ZeroMemBudget
        );
        assert!(CrawlConfig::builder().mem_budget_mb(64).build().is_ok());
        assert!(CrawlConfig::builder()
            .deadline(Duration::from_millis(50))
            .cancel(CancelToken::new())
            .build()
            .is_ok());
        assert!(CrawlConfig::builder()
            .max_rounds(10_000)
            .known_target_size(5)
            .target_coverage(0.9)
            .build()
            .is_ok());
    }
}
