//! Shared configuration primitives: retry policy and builder validation.
//!
//! Crawl and fleet configurations are built through validating builders
//! ([`crate::CrawlConfig::builder`], [`crate::fleet::FleetConfig::builder`])
//! that reject nonsensical parameters — zero budgets, zero slices,
//! conjunctive arity below 2 — at build time with a [`ConfigError`], instead
//! of panicking (or silently stalling) mid-crawl.

/// Retry behaviour on transient page-request failures.
///
/// A real crawler that gets throttled waits before retrying; waiting costs
/// wall-clock time that the simulation bills as *backoff rounds*. The
/// schedule is deterministic exponential backoff: before retry attempt `k`
/// (1-based) the crawler waits `backoff_base · 2^(k−1)` simulated rounds,
/// capped at `backoff_cap`. Backoff rounds count against round budgets
/// (Definition 2.3 bills time, not just served pages) but are not server
/// requests — the source's own counter only grows by real attempts.
///
/// **The default is `max_retries: 0` — fail fast.** A bare
/// [`crate::CrawlConfig`] abandons a page on its first transient error;
/// only the total-failure requeue path
/// ([`crate::CrawlConfig::max_requeues`]) gives the query another chance.
/// Set retries explicitly for any fault-prone source
/// ([`crate::crawler::CrawlConfigBuilder::max_retries`]); fleet runners
/// substitute [`crate::fleet::FleetConfig::default_retry`] into jobs left
/// on this default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per page after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated rounds.
    pub backoff_base: u64,
    /// Upper bound on a single backoff wait, in simulated rounds.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 0, backoff_base: 1, backoff_cap: 64 }
    }
}

impl RetryPolicy {
    /// A policy with `n` retries and the default backoff schedule.
    pub fn retries(n: u32) -> Self {
        RetryPolicy { max_retries: n, ..Default::default() }
    }

    /// Simulated rounds to wait before retry attempt `attempt` (1-based).
    /// Attempt 0 is the initial request: no wait.
    pub fn backoff_before(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = (attempt - 1).min(63);
        self.backoff_base.saturating_mul(1u64 << exp).min(self.backoff_cap)
    }
}

/// A configuration rejected at build time.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A budget or slice parameter was zero where positive is required.
    ZeroBudget(&'static str),
    /// Conjunctive query mode needs at least two predicates per query.
    BadArity(usize),
    /// A coverage target outside `(0, 1]`.
    BadCoverage(f64),
    /// A coverage target without a known target size can never fire.
    CoverageNeedsTargetSize,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBudget(what) => write!(f, "{what} must be positive"),
            ConfigError::BadArity(n) => {
                write!(f, "conjunctive arity must be at least 2, got {n}")
            }
            ConfigError::BadCoverage(c) => {
                write!(f, "target coverage must lie in (0, 1], got {c}")
            }
            ConfigError::CoverageNeedsTargetSize => {
                write!(f, "a coverage target requires known_target_size")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy { max_retries: 10, backoff_base: 2, backoff_cap: 9 };
        assert_eq!(r.backoff_before(0), 0);
        assert_eq!(r.backoff_before(1), 2);
        assert_eq!(r.backoff_before(2), 4);
        assert_eq!(r.backoff_before(3), 8);
        assert_eq!(r.backoff_before(4), 9, "capped");
        assert_eq!(r.backoff_before(100), 9, "huge attempts saturate, no overflow");
    }

    #[test]
    fn default_policy_fails_fast() {
        assert_eq!(RetryPolicy::default().max_retries, 0);
        assert_eq!(RetryPolicy::retries(3).max_retries, 3);
    }
}
