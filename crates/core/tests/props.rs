//! Property tests for the crawler: checkpoint round-trips, resume
//! equivalence, query-mode set relations, and abortion safety — all over
//! randomly generated databases.

use dwc_core::checkpoint::Checkpoint;
use dwc_core::extract::{page_to_wire, parse_page, parse_page_ref, ExtractedPage, ExtractedRecord};
use dwc_core::policy::PolicyKind;
use dwc_core::state::CandStatus;
use dwc_core::{AbortPolicy, CrawlConfig, Crawler, QueryMode};
use dwc_model::{AttrId, AttrSpec, Schema, UniversalTable};
use dwc_server::{InterfaceSpec, WebDbServer};
use proptest::prelude::*;

/// Deterministic companion to `zero_copy_and_owned_parsers_agree`: the exact
/// corpus the extractor's unit tests escape by hand, one field per pairing.
#[test]
fn zero_copy_and_owned_parsers_agree_on_seed_corpus() {
    let corpus =
        ["a<b>&\"c\"", "T&C", "&amp;", "&notanentity;", "&", "clean", "", "'quoted'", "é⟩𝄞"];
    for (i, attr) in corpus.iter().enumerate() {
        for value in &corpus {
            let page = ExtractedPage {
                page_index: i,
                total_matches: Some(corpus.len()),
                has_more: false,
                records: vec![ExtractedRecord {
                    key: i as u64,
                    fields: vec![(attr.to_string(), value.to_string())],
                }],
            };
            let wire = page_to_wire(&page);
            let owned = parse_page(&wire).unwrap();
            let zero_copy = parse_page_ref(&wire).unwrap().to_owned_page();
            assert_eq!(owned, zero_copy, "parsers disagree on {wire}");
            assert_eq!(owned, page, "round-trip must be exact for {wire}");
        }
    }
}

fn schema() -> Schema {
    Schema::new(vec![AttrSpec::queriable("A"), AttrSpec::queriable("B"), AttrSpec::queriable("C")])
}

fn table_from(records: &[Vec<(u16, u8)>]) -> UniversalTable {
    let mut t = UniversalTable::new(schema());
    for rec in records {
        let fields: Vec<(AttrId, String)> =
            rec.iter().map(|&(a, v)| (AttrId(a % 3), format!("v{v}"))).collect();
        t.push_record_strs(fields.iter().map(|(a, s)| (*a, s.as_str())));
    }
    t
}

fn record_strategy() -> impl Strategy<Value = Vec<(u16, u8)>> {
    prop::collection::vec((0u16..3, 0u8..12), 1..=5)
}

fn status_strategy() -> impl Strategy<Value = CandStatus> {
    prop_oneof![
        Just(CandStatus::Undiscovered),
        Just(CandStatus::Frontier),
        Just(CandStatus::Queried),
    ]
}

/// Strings stacked with the characters the checkpoint text format must
/// escape or survive: its own field separator (tab), its escape introducer
/// (%), line breaks that could forge record boundaries, and multi-byte
/// unicode that could break naive byte slicing.
fn adversarial_string() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("\t".to_string()),
        Just("%".to_string()),
        Just("\r\n".to_string()),
        Just("\n".to_string()),
        Just("%09".to_string()),
        Just("%%".to_string()),
        Just("é⟩𝄞".to_string()),
        Just("DWC-CHECKPOINT v2 crc=".to_string()),
        ".{0,3}",
    ];
    prop::collection::vec(fragment, 0..6).prop_map(|parts| parts.concat())
}

/// Strings stacked with everything the XML escaping layer must survive:
/// bare entities and entity look-alikes (`&amp;`, `&notanentity`, a lone
/// `&`), the markup characters themselves, quotes, and multi-byte unicode.
/// Seeded with the `"a<b>&\"c\""` corpus the extractor's unit tests use.
fn escape_adversarial_string() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("a<b>&\"c\"".to_string()),
        Just("T&C".to_string()),
        Just("&amp;".to_string()),
        Just("&lt;field&gt;".to_string()),
        Just("&notanentity;".to_string()),
        Just("&".to_string()),
        Just("&#38;".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just("\"".to_string()),
        Just("'".to_string()),
        Just("</field>".to_string()),
        Just("é⟩𝄞".to_string()),
        ".{0,4}",
    ];
    prop::collection::vec(fragment, 0..6).prop_map(|parts| parts.concat())
}

/// An extracted page whose attribute names and values are adversarially
/// escaped strings.
fn page_strategy() -> impl Strategy<Value = ExtractedPage> {
    let field = (escape_adversarial_string(), escape_adversarial_string());
    let record = (any::<u64>(), prop::collection::vec(field, 0..4))
        .prop_map(|(key, fields)| ExtractedRecord { key, fields });
    (
        prop::collection::vec(record, 0..5),
        0usize..100,
        prop::option::of(0usize..10_000),
        any::<bool>(),
    )
        .prop_map(|(records, page_index, total_matches, has_more)| ExtractedPage {
            page_index,
            total_matches,
            has_more,
            records,
        })
}

/// A structurally valid checkpoint over arbitrary value strings.
fn checkpoint_from(values: Vec<(u16, String)>, rounds: u64, queries: u64) -> Checkpoint {
    let n = values.len();
    Checkpoint {
        attr_names: vec!["A".into(), "B".into(), "C".into()],
        attr_queriable: vec![true, true, false],
        page_size: 7,
        keyword_mode: queries.is_multiple_of(2),
        values: values.into_iter().map(|(a, s)| (a % 3, s)).collect(),
        status: (0..n)
            .map(|i| if i.is_multiple_of(2) { CandStatus::Frontier } else { CandStatus::Queried })
            .collect(),
        queried: (0..n as u32).filter(|i| i.is_multiple_of(3)).collect(),
        records: (0..n as u64).map(|k| (k, vec![k as u32])).collect(),
        rounds,
        queries,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checkpoint text serialization round-trips arbitrary content,
    /// including metacharacters in attribute names and values.
    #[test]
    fn checkpoint_text_roundtrips(
        attr_names in prop::collection::vec(any::<String>(), 1..4),
        value_strs in prop::collection::vec((0u16..3, any::<String>()), 0..20),
        rounds in any::<u64>(),
        queries in any::<u64>(),
        statuses in prop::collection::vec(status_strategy(), 0..20),
        page_size in 1usize..50,
    ) {
        let n = value_strs.len().min(statuses.len());
        let cp = Checkpoint {
            attr_queriable: attr_names.iter().map(|s| s.len().is_multiple_of(2)).collect(),
            attr_names,
            page_size,
            keyword_mode: rounds.is_multiple_of(2),
            values: value_strs[..n].to_vec(),
            status: statuses[..n].to_vec(),
            queried: (0..n as u32).filter(|i| i.is_multiple_of(3)).collect(),
            records: (0..n as u64).map(|k| (k, vec![k as u32 % n.max(1) as u32])).collect(),
            rounds,
            queries,
        };
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        prop_assert_eq!(back, cp);
    }

    /// Round-trips survive value strings built specifically to attack the
    /// text format: tabs (the field separator), % (the escape introducer),
    /// CR/LF (record-boundary forgery), unicode, and header look-alikes.
    #[test]
    fn checkpoint_roundtrips_adversarial_strings(
        values in prop::collection::vec((0u16..3, adversarial_string()), 0..12),
        rounds in any::<u64>(),
        queries in any::<u64>(),
    ) {
        let cp = checkpoint_from(values, rounds, queries);
        let back = Checkpoint::from_text(&cp.to_text()).unwrap();
        prop_assert_eq!(back, cp);
    }

    /// A v2 checkpoint truncated at ANY byte — the torn-write shape a crash
    /// leaves behind — must be rejected by the checksum, never half-parsed.
    #[test]
    fn truncation_at_every_byte_is_rejected(
        values in prop::collection::vec((0u16..3, adversarial_string()), 0..8),
        rounds in any::<u64>(),
        queries in any::<u64>(),
    ) {
        let cp = checkpoint_from(values, rounds, queries);
        let text = cp.to_text();
        prop_assert!(Checkpoint::from_text(&text).is_ok());
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            prop_assert!(
                Checkpoint::from_text(&text[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not parse",
                text.len()
            );
        }
    }

    /// Interrupt-at-any-point + resume harvests exactly the same record set
    /// as an uninterrupted crawl (BFS: even the same cost).
    #[test]
    fn resume_equals_uninterrupted(
        records in prop::collection::vec(record_strategy(), 1..25),
        cut_after in 0u64..6,
        seed_val in 0u8..12,
    ) {
        let t = table_from(&records);
        let seed = format!("v{seed_val}");
        let baseline = {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 3));
            let mut c = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
            c.add_seed("B", &seed);
            c.run()
        };
        let resumed = {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 3));
            let mut c = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
            c.add_seed("B", &seed);
            for _ in 0..cut_after {
                if c.step().is_none() {
                    break;
                }
            }
            let cp = Checkpoint::from_text(&c.checkpoint().to_text()).unwrap();
            drop(c);
            let server2 = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 3));
            let c2 = Crawler::resume(&server2, PolicyKind::Bfs.build(), &cp, CrawlConfig::default());
            c2.run()
        };
        prop_assert_eq!(resumed.records, baseline.records);
        prop_assert_eq!(resumed.rounds, baseline.rounds, "BFS resume is cost-exact");
        prop_assert_eq!(resumed.queries, baseline.queries);
    }

    /// The zero-copy wire parser and the legacy owned parser agree on every
    /// page — including adversarially escaped attribute names and values —
    /// and both round-trip the original page exactly.
    #[test]
    fn zero_copy_and_owned_parsers_agree(page in page_strategy()) {
        let wire = page_to_wire(&page);
        let owned = parse_page(&wire).unwrap();
        let zero_copy = parse_page_ref(&wire).unwrap().to_owned_page();
        prop_assert_eq!(&owned, &zero_copy, "parsers disagree on {}", wire);
        prop_assert_eq!(&owned, &page, "wire round-trip must be exact");
    }

    /// Keyword-mode coverage is a superset of structured-mode coverage: any
    /// structured query's matches are contained in the keyword query of the
    /// same string.
    #[test]
    fn keyword_coverage_superset(
        records in prop::collection::vec(record_strategy(), 1..25),
        seed_val in 0u8..12,
    ) {
        let t = table_from(&records);
        let seed = format!("v{seed_val}");
        let run = |mode: QueryMode| {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 3));
            let config = CrawlConfig { query_mode: mode, ..Default::default() };
            let mut c = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            c.add_seed("A", &seed);
            c.run().records
        };
        prop_assert!(run(QueryMode::Keyword) >= run(QueryMode::Structured));
    }

    /// The abortion heuristics never reduce the final harvested set when the
    /// crawl runs to frontier exhaustion — aborting a query only skips pages
    /// whose records remain reachable through later queries... except records
    /// reachable ONLY via skipped pages; so instead we assert the safe
    /// property the crawler guarantees: abortion never *increases* cost.
    #[test]
    fn abortion_never_costs_more(
        records in prop::collection::vec(record_strategy(), 1..30),
        seed_val in 0u8..12,
    ) {
        let t = table_from(&records);
        let seed = format!("v{seed_val}");
        let run = |abort: AbortPolicy| {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 2));
            let config = CrawlConfig { abort, ..Default::default() };
            let mut c = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            c.add_seed("C", &seed);
            c.run()
        };
        let plain = run(AbortPolicy::never());
        let aborted = run(AbortPolicy::standard());
        prop_assert!(aborted.rounds <= plain.rounds);
    }

    /// Conjunctive-mode coverage never exceeds structured-mode coverage on
    /// the same seeds (each conjunction is an intersection of a structured
    /// query's result).
    #[test]
    fn conjunctive_coverage_subset(
        records in prop::collection::vec(record_strategy(), 1..25),
        seed_val in 0u8..12,
    ) {
        let t = table_from(&records);
        let seed = format!("v{seed_val}");
        let structured = {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 3));
            let mut c = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
            c.add_seed("A", &seed);
            c.run().records
        };
        let conjunctive = {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 3));
            let config = CrawlConfig {
                query_mode: QueryMode::Conjunctive { arity: 2 },
                ..Default::default()
            };
            let mut c = Crawler::new(&server, PolicyKind::Bfs.build(), config);
            c.add_seed("A", &seed);
            c.run().records
        };
        prop_assert!(conjunctive <= structured);
    }
}
