//! The paged universal table: records and postings served from segments.
//!
//! [`SegmentTable`] is the out-of-core twin of `dwc_model::UniversalTable` +
//! the server's `InvertedIndex`: record value lists and per-value postings
//! lists live in packed [`ListStore`] columns behind a [`BufferPool`], while
//! the schema and the value interner stay resident (both are proportional to
//! |DAV|, not to the record count — the same asymmetry the paper's frontier
//! exploits). Because records are interned in insertion order and postings
//! are emitted in ascending record-id order, a `SegmentTable` built from the
//! same record stream as a resident table assigns **identical `ValueId`s and
//! identical postings** — the property that makes resident-vs-paged crawl
//! reports bit-identical.
//!
//! The postings build never holds more than a configurable byte budget of
//! postings in RAM: a counting pass sizes every list, then values are
//! processed in contiguous id *buckets*, each bucket filled by one
//! sequential scan of the record segment and appended sequentially to the
//! postings segment.

use crate::list::{ListStore, ListWriter};
use crate::pager::{FilePager, SegmentPager, DEFAULT_PAGE_SIZE};
use crate::pool::{BufferPool, PoolStats};
use dwc_model::{AttrId, AttrSpec, Schema, ValueId, ValueInterner};
use std::io;
use std::path::Path;

/// Default RAM allowance for one postings bucket during the build (64 MiB of
/// packed postings, i.e. 16M postings per scan).
pub const DEFAULT_BUILD_BUDGET: usize = 64 << 20;

/// Streaming builder for a [`SegmentTable`].
#[derive(Debug)]
pub struct SegmentTableBuilder {
    schema: Schema,
    interner: ValueInterner,
    pager: Box<dyn SegmentPager>,
    records: ListWriter,
    counts: Vec<u32>,
    scratch: Vec<ValueId>,
    build_budget: usize,
}

impl SegmentTableBuilder {
    /// Starts a build over `pager` (which must be empty).
    pub fn new(schema: Schema, mut pager: Box<dyn SegmentPager>) -> io::Result<Self> {
        assert_eq!(pager.num_segments(), 0, "builder needs an empty pager");
        let records = ListWriter::create(pager.as_mut())?;
        Ok(SegmentTableBuilder {
            schema,
            interner: ValueInterner::new(),
            pager,
            records,
            counts: Vec::new(),
            scratch: Vec::new(),
            build_budget: DEFAULT_BUILD_BUDGET,
        })
    }

    /// Caps the postings-build bucket at `bytes` of packed postings.
    pub fn with_build_budget(mut self, bytes: usize) -> Self {
        self.build_budget = bytes.max(1 << 12);
        self
    }

    /// Appends one record from `(attribute, value string)` fields, interning
    /// exactly as `UniversalTable::push_record_strs` does (same insertion
    /// order ⇒ same ids), then sorting and deduplicating the record.
    pub fn push_record_strs<'a, I>(&mut self, fields: I) -> io::Result<()>
    where
        I: IntoIterator<Item = (AttrId, &'a str)>,
    {
        self.scratch.clear();
        for (attr, s) in fields {
            self.scratch.push(self.interner.intern(attr, s));
        }
        self.push_scratch()
    }

    /// Appends one record from already-interned ids (the from-resident-table
    /// path; the caller's interner must be this builder's interner).
    pub fn push_record_ids(&mut self, values: &[ValueId]) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.extend_from_slice(values);
        self.push_scratch()
    }

    fn push_scratch(&mut self) -> io::Result<()> {
        self.scratch.sort_unstable();
        self.scratch.dedup();
        if self.counts.len() < self.interner.len() {
            self.counts.resize(self.interner.len(), 0);
        }
        for v in &self.scratch {
            self.counts[v.index()] += 1;
        }
        // ValueId is a plain u32 wrapper; the packed column stores the u32s.
        let raw: Vec<u32> = self.scratch.iter().map(|v| v.0).collect();
        self.records.push(self.pager.as_mut(), &raw)?;
        Ok(())
    }

    /// Replaces the builder's interner (used with
    /// [`SegmentTable::from_table`] so ids match an existing resident table).
    fn with_interner(mut self, interner: ValueInterner) -> Self {
        self.counts.resize(interner.len(), 0);
        self.interner = interner;
        self
    }

    /// Seals the table: finishes the record column, builds postings in
    /// bounded-RSS buckets, and wires up a pool of `pool_bytes`.
    pub fn finish(mut self, pool_bytes: usize) -> io::Result<SegmentTable> {
        let records = self.records.finish(self.pager.as_mut())?;
        self.counts.resize(self.interner.len(), 0);
        let pool = BufferPool::with_budget(pool_bytes, self.pager.page_size());

        let mut postings_writer = ListWriter::create(self.pager.as_mut())?;
        let budget_elems = (self.build_budget / 4).max(1024);
        let mut lo = 0usize;
        while lo < self.counts.len() {
            // Greedy contiguous bucket under the element budget (always at
            // least one value, so a single pathological list still builds).
            let mut hi = lo;
            let mut total = 0usize;
            while hi < self.counts.len() {
                let c = self.counts[hi] as usize;
                if hi > lo && total + c > budget_elems {
                    break;
                }
                total += c;
                hi += 1;
            }
            // Local prefix sums over [lo, hi).
            let mut starts = Vec::with_capacity(hi - lo + 1);
            let mut acc = 0usize;
            starts.push(0);
            for v in lo..hi {
                acc += self.counts[v] as usize;
                starts.push(acc);
            }
            let mut data = vec![0u32; acc];
            let mut cursor = starts.clone();
            records.scan(self.pager.as_ref(), &pool, |rid, vals| {
                for &v in vals {
                    let v = v as usize;
                    if v >= lo && v < hi {
                        data[cursor[v - lo]] = rid as u32;
                        cursor[v - lo] += 1;
                    }
                }
            })?;
            for v in lo..hi {
                postings_writer
                    .push(self.pager.as_mut(), &data[starts[v - lo]..starts[v - lo + 1]])?;
            }
            lo = hi;
        }
        let postings = postings_writer.finish(self.pager.as_mut())?;
        self.pager.sync()?;

        Ok(SegmentTable {
            schema: self.schema,
            interner: self.interner,
            records,
            postings,
            pager: self.pager,
            pool,
        })
    }
}

/// A read-only universal table + inverted index served from segments.
///
/// All read methods take `&self` (the pool serializes page faults
/// internally) and **panic on storage I/O errors**: the segment files are
/// infrastructure, not a simulated source — source-level faults stay in the
/// server's `FaultPolicy`, so fault parity between backends is untouched.
#[derive(Debug)]
pub struct SegmentTable {
    schema: Schema,
    interner: ValueInterner,
    records: ListStore,
    postings: ListStore,
    pager: Box<dyn SegmentPager>,
    pool: BufferPool,
}

impl SegmentTable {
    /// Builds a paged copy of a resident table (shared interner ⇒ identical
    /// ids), for parity tests and backend swaps.
    pub fn from_table(
        table: &dwc_model::UniversalTable,
        pager: Box<dyn SegmentPager>,
        pool_bytes: usize,
    ) -> io::Result<Self> {
        let mut b = SegmentTableBuilder::new(table.schema().clone(), pager)?
            .with_interner(table.interner().clone());
        for (_, rec) in table.iter() {
            b.push_record_ids(rec.values())?;
        }
        b.finish(pool_bytes)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The (resident) value interner.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Number of records.
    pub fn num_records(&self) -> u64 {
        self.records.len()
    }

    /// Number of distinct attribute values (|DAV|).
    pub fn num_distinct_values(&self) -> usize {
        self.interner.len()
    }

    /// Bytes written to the pager across all segments (the on-disk size).
    pub fn storage_bytes(&self) -> u64 {
        (0..self.pager.num_segments()).map(|s| self.pager.segment_len(s)).sum()
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Number of records containing `v`.
    pub fn match_count(&self, v: ValueId) -> usize {
        if v.index() >= self.interner.len() {
            return 0;
        }
        self.postings
            .list_len(self.pager.as_ref(), &self.pool, v.index() as u64)
            .expect("segment store I/O")
    }

    /// Appends postings `lo..hi` (indices within `v`'s sorted postings list)
    /// to `out` — the pagination hot path touches only the pages its slice
    /// covers.
    pub fn postings_slice_into(&self, v: ValueId, lo: usize, hi: usize, out: &mut Vec<u32>) {
        if v.index() >= self.interner.len() {
            return;
        }
        self.postings
            .read_slice_into(self.pager.as_ref(), &self.pool, v.index() as u64, lo, hi, out)
            .expect("segment store I/O");
    }

    /// `v`'s full sorted postings list.
    pub fn postings_vec(&self, v: ValueId) -> Vec<u32> {
        let mut out = Vec::new();
        if v.index() < self.interner.len() {
            self.postings
                .read_into(self.pager.as_ref(), &self.pool, v.index() as u64, &mut out)
                .expect("segment store I/O");
        }
        out
    }

    /// The sorted, deduplicated value ids of record `rid`.
    pub fn record_values(&self, rid: u32) -> Vec<ValueId> {
        let mut raw = Vec::new();
        self.records
            .read_into(self.pager.as_ref(), &self.pool, u64::from(rid), &mut raw)
            .expect("segment store I/O");
        raw.into_iter().map(ValueId).collect()
    }

    /// Sorted union of several postings lists (keyword queries).
    pub fn union(&self, values: &[ValueId]) -> Vec<u32> {
        match values {
            [] => Vec::new(),
            [v] => self.postings_vec(*v),
            _ => {
                let mut all: Vec<u32> = values.iter().flat_map(|&v| self.postings_vec(v)).collect();
                all.sort_unstable();
                all.dedup();
                all
            }
        }
    }

    /// Sorted intersection of several postings lists (conjunctive queries).
    pub fn intersect(&self, values: &[ValueId]) -> Vec<u32> {
        match values {
            [] => Vec::new(),
            [v] => self.postings_vec(*v),
            _ => {
                let mut lists: Vec<Vec<u32>> =
                    values.iter().map(|&v| self.postings_vec(v)).collect();
                lists.sort_by_key(Vec::len);
                let mut acc = lists[0].clone();
                for l in &lists[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    let mut out = Vec::with_capacity(acc.len().min(l.len()));
                    let (mut i, mut j) = (0, 0);
                    while i < acc.len() && j < l.len() {
                        match acc[i].cmp(&l[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                out.push(acc[i]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    acc = out;
                }
                acc
            }
        }
    }

    /// Streams every record through `f(rid, values)` in id order (analysis
    /// and test helper).
    pub fn scan_records<F>(&self, mut f: F)
    where
        F: FnMut(u32, &[u32]),
    {
        self.records
            .scan(self.pager.as_ref(), &self.pool, |rid, vals| f(rid as u32, vals))
            .expect("segment store I/O");
    }

    /// Persists the table's metadata (schema, interner spill, column
    /// layouts) as `table.meta` under `dir`, next to a [`FilePager`]'s
    /// segment files, so [`SegmentTable::open`] can reattach later.
    pub fn save_meta(&self, dir: &Path) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DWCSEGT1");
        let (ro, rd, rc, re) = self.records.parts();
        let (po, pd, pc, pe) = self.postings.parts();
        for x in [u64::from(ro), u64::from(rd), rc, re, u64::from(po), u64::from(pd), pc, pe] {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.extend_from_slice(&(self.schema.len() as u32).to_le_bytes());
        for (_, spec) in self.schema.iter() {
            let name = spec.name.as_bytes();
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name);
            out.push(u8::from(spec.queriable));
            out.push(u8::from(spec.multi_valued));
        }
        let interner = self.interner.to_packed_bytes();
        out.extend_from_slice(&(interner.len() as u64).to_le_bytes());
        out.extend_from_slice(&interner);
        let sum = crate::fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(dir.join("table.meta"), out)
    }

    /// Reattaches a table persisted under `dir` (segment files + meta),
    /// with a buffer pool of `pool_bytes`.
    pub fn open(dir: &Path, pool_bytes: usize) -> io::Result<Self> {
        let bytes = std::fs::read(dir.join("table.meta"))?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        if bytes.len() < 8 + 64 + 4 + 8 + 8 {
            return Err(bad("segment table meta truncated"));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if crate::fnv1a64(payload) != sum {
            return Err(bad("segment table meta failed checksum"));
        }
        if &payload[..8] != b"DWCSEGT1" {
            return Err(bad("segment table meta has wrong magic"));
        }
        let mut at = 8usize;
        let next_u64 = |at: &mut usize| -> io::Result<u64> {
            let end = *at + 8;
            if end > payload.len() {
                return Err(bad("segment table meta truncated"));
            }
            let v = u64::from_le_bytes(payload[*at..end].try_into().expect("8 bytes"));
            *at = end;
            Ok(v)
        };
        let mut cols = [0u64; 8];
        for c in &mut cols {
            *c = next_u64(&mut at)?;
        }
        let records = ListStore::from_parts(cols[0] as u32, cols[1] as u32, cols[2], cols[3]);
        let postings = ListStore::from_parts(cols[4] as u32, cols[5] as u32, cols[6], cols[7]);
        if at + 4 > payload.len() {
            return Err(bad("segment table meta truncated"));
        }
        let num_attrs =
            u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        let mut attrs = Vec::with_capacity(num_attrs);
        for _ in 0..num_attrs {
            if at + 4 > payload.len() {
                return Err(bad("segment table meta truncated"));
            }
            let len = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes")) as usize;
            at += 4;
            if at + len + 2 > payload.len() {
                return Err(bad("segment table meta truncated"));
            }
            let name = std::str::from_utf8(&payload[at..at + len])
                .map_err(|_| bad("segment table meta attr name not UTF-8"))?
                .to_owned();
            at += len;
            let queriable = payload[at] != 0;
            let multi_valued = payload[at + 1] != 0;
            at += 2;
            attrs.push(AttrSpec { name, queriable, multi_valued });
        }
        let schema = Schema::new(attrs);
        let ilen = next_u64(&mut at)? as usize;
        if at + ilen != payload.len() {
            return Err(bad("segment table meta truncated"));
        }
        let interner = ValueInterner::from_packed_bytes(&payload[at..at + ilen])
            .map_err(|e| bad(&format!("interner spill: {e}")))?;
        let pager = FilePager::open(dir, DEFAULT_PAGE_SIZE)?;
        let pool = BufferPool::with_budget(pool_bytes, pager.page_size());
        Ok(SegmentTable { schema, interner, records, postings, pager: Box::new(pager), pool })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::UniversalTable;
    use std::path::PathBuf;

    fn scratch_dir(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("dwc-segtable-{}-{n}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn paged_copy(table: &UniversalTable, page_size: usize, pool_bytes: usize) -> SegmentTable {
        SegmentTable::from_table(table, Box::new(MemPager::new(page_size)), pool_bytes).unwrap()
    }

    fn assert_matches_resident(st: &SegmentTable, t: &UniversalTable) {
        assert_eq!(st.num_records(), t.num_records() as u64);
        assert_eq!(st.num_distinct_values(), t.num_distinct_values());
        for (rid, rec) in t.iter() {
            assert_eq!(st.record_values(rid.0), rec.values(), "record {rid:?}");
        }
        for v in t.interner().iter_ids() {
            assert_eq!(st.match_count(v), t.count_matches(v), "count of {v}");
            let postings = st.postings_vec(v);
            assert!(postings.windows(2).all(|w| w[0] < w[1]), "sorted postings for {v}");
            assert_eq!(postings.len(), t.count_matches(v));
        }
    }

    #[test]
    fn figure1_round_trips_through_segments() {
        let t = figure1_table();
        let st = paged_copy(&t, 128, 1024);
        assert_matches_resident(&st, &t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        assert_eq!(st.postings_vec(a2), vec![1, 2, 3]);
        let mut slice = Vec::new();
        st.postings_slice_into(a2, 1, 3, &mut slice);
        assert_eq!(slice, vec![2, 3]);
        assert_eq!(st.match_count(ValueId(10_000)), 0, "unknown ids have no postings");
    }

    #[test]
    fn tiny_build_budget_multiplies_buckets_not_results() {
        // Force many postings buckets (budget of ~1024 elems per bucket
        // minimum) and verify results are unchanged.
        let mut t = UniversalTable::new(Schema::new(vec![
            AttrSpec::queriable("A"),
            AttrSpec::queriable("B"),
        ]));
        for i in 0..300u32 {
            t.push_record_strs([
                (AttrId(0), format!("a{}", i % 11)),
                (AttrId(1), format!("b{}", i % 37)),
            ]);
        }
        let mut b = SegmentTableBuilder::new(t.schema().clone(), Box::new(MemPager::new(256)))
            .unwrap()
            .with_build_budget(1);
        b = b.with_interner(t.interner().clone());
        for (_, rec) in t.iter() {
            b.push_record_ids(rec.values()).unwrap();
        }
        let st = b.finish(16 * 256).unwrap();
        assert_matches_resident(&st, &t);
    }

    #[test]
    fn streaming_strs_build_matches_resident_ids() {
        // Build resident and paged from the same field stream; ids must
        // coincide without sharing an interner.
        let schema = Schema::new(vec![AttrSpec::queriable("X"), AttrSpec::queriable_multi("Y")]);
        let rows: Vec<Vec<(AttrId, String)>> = (0..100u32)
            .map(|i| {
                vec![
                    (AttrId(0), format!("x{}", i % 13)),
                    (AttrId(1), format!("y{}", i % 7)),
                    (AttrId(1), format!("y{}", (i * 3) % 7)),
                ]
            })
            .collect();
        let mut t = UniversalTable::new(schema.clone());
        for row in &rows {
            t.push_record_strs(row.iter().map(|(a, s)| (*a, s.as_str())));
        }
        let mut b = SegmentTableBuilder::new(schema, Box::new(MemPager::new(256))).unwrap();
        for row in &rows {
            b.push_record_strs(row.iter().map(|(a, s)| (*a, s.as_str()))).unwrap();
        }
        let st = b.finish(8 * 256).unwrap();
        assert_matches_resident(&st, &t);
        for v in t.interner().iter_ids() {
            assert_eq!(
                st.interner().get(t.interner().attr_of(v), t.interner().value_str(v)),
                Some(v),
                "independent builds assign the same id to {v}"
            );
        }
    }

    #[test]
    fn union_and_intersect_match_resident_semantics() {
        let t = figure1_table();
        let st = paged_copy(&t, 128, 2048);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        assert_eq!(st.union(&[a2, c2]), vec![1, 2, 3, 4]);
        assert_eq!(st.intersect(&[a2, c2]), vec![2, 3]);
        assert_eq!(st.intersect(&[]), Vec::<u32>::new());
    }

    #[test]
    fn persists_and_reopens_from_directory() {
        let dir = scratch_dir("persist");
        let t = figure1_table();
        let pager = FilePager::open(&dir, DEFAULT_PAGE_SIZE).unwrap();
        let st = SegmentTable::from_table(&t, Box::new(pager), 1 << 16).unwrap();
        st.save_meta(&dir).unwrap();
        drop(st);
        let st = SegmentTable::open(&dir, 1 << 16).unwrap();
        assert_matches_resident(&st, &t);
        // Tampering with the meta is detected.
        let meta = dir.join("table.meta");
        let mut bytes = std::fs::read(&meta).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&meta, bytes).unwrap();
        assert!(SegmentTable::open(&dir, 1 << 16).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
