//! Length+checksum-framed append-only log.
//!
//! The crawler's incremental state journal appends one frame per completed
//! query; recovery replays frames in order and stops at the first frame that
//! is truncated or fails its checksum — everything before the tear is
//! trusted, everything after is discarded, exactly the contract of the v2
//! checksummed checkpoint store this log extends to per-query granularity.
//!
//! Frame wire format, all little-endian:
//!
//! ```text
//! [u32 payload_len][u64 fnv1a64(payload)][payload bytes]
//! ```

use crate::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Maximum accepted frame payload (a corrupt length prefix must not drive a
/// multi-gigabyte allocation).
const MAX_FRAME: u32 = 256 << 20;

/// Append-only framed log file.
#[derive(Debug)]
pub struct FrameLog {
    file: File,
    path: PathBuf,
    len: u64,
    frames: u64,
}

impl FrameLog {
    /// Creates (truncating) a fresh log at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FrameLog { file, path: path.to_path_buf(), len: 0, frames: 0 })
    }

    /// Opens an existing log for appending, first replaying it to find the
    /// valid prefix; a torn tail is truncated away so new frames extend the
    /// trusted prefix.
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let replay = Self::replay(path)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        Ok(FrameLog {
            file,
            path: path.to_path_buf(),
            len: replay.valid_len,
            frames: replay.frames.len() as u64,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of frames appended (or replayed) so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes in the valid prefix.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Appends one frame and flushes it to the OS.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt as _;
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all_at(&frame, self.len)?;
        self.len += frame.len() as u64;
        self.frames += 1;
        Ok(())
    }

    /// Truncates the log back to empty (after its contents were absorbed
    /// into a full snapshot).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.len = 0;
        self.frames = 0;
        Ok(())
    }

    /// Forces appended frames to durable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Reads the valid frame prefix of the log at `path`. A missing file
    /// replays as an empty, untorn log.
    pub fn replay(path: &Path) -> io::Result<ReplayedLog> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self::replay_bytes(&bytes))
    }

    /// Frame-parses a byte buffer (the log file's contents).
    pub fn replay_bytes(bytes: &[u8]) -> ReplayedLog {
        let mut frames = Vec::new();
        let mut pos = 0usize;
        let mut torn = false;
        while bytes.len() - pos >= 12 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let body_start = pos + 12;
            if len > MAX_FRAME as usize || bytes.len() - body_start < len {
                torn = true;
                break;
            }
            let payload = &bytes[body_start..body_start + len];
            if fnv1a64(payload) != sum {
                torn = true;
                break;
            }
            frames.push(payload.to_vec());
            pos = body_start + len;
        }
        if pos < bytes.len() && !torn {
            torn = true; // trailing partial header
        }
        ReplayedLog { frames, valid_len: pos as u64, torn }
    }
}

/// Result of replaying a [`FrameLog`].
#[derive(Debug)]
pub struct ReplayedLog {
    /// Payloads of the valid frame prefix, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Byte length of that valid prefix.
    pub valid_len: u64,
    /// Whether bytes past the valid prefix were discarded (torn tail).
    pub torn: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dwc-framelog-{}-{n}-{name}.log", std::process::id()))
    }

    #[test]
    fn append_replay_round_trips() {
        let path = scratch("roundtrip");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"alpha").unwrap();
        log.append(b"").unwrap();
        log.append(b"gamma gamma").unwrap();
        let r = FrameLog::replay(&path).unwrap();
        assert!(!r.torn);
        assert_eq!(r.frames, vec![b"alpha".to_vec(), b"".to_vec(), b"gamma gamma".to_vec()]);
        assert_eq!(r.valid_len, log.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_every_truncation_point() {
        let path = scratch("truncate");
        let mut log = FrameLog::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 10 + i]).collect();
        for p in &payloads {
            log.append(p).unwrap();
        }
        log.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Frame boundaries: prefix sums of 12 + payload len.
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + 12 + p.len());
        }
        for cut in 0..=full.len() {
            let r = FrameLog::replay_bytes(&full[..cut]);
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(r.frames.len(), complete, "cut at {cut}");
            assert_eq!(r.frames[..], payloads[..complete], "cut at {cut}");
            assert_eq!(r.torn, cut != boundaries[complete], "cut at {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_byte_invalidates_frame_and_tail() {
        let path = scratch("corrupt");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"first frame").unwrap();
        log.append(b"second frame").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first payload.
        bytes[14] ^= 0xff;
        let r = FrameLog::replay_bytes(&bytes);
        assert!(r.frames.is_empty(), "corruption in frame 1 discards everything after it");
        assert!(r.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_append_truncates_torn_tail_and_continues() {
        let path = scratch("reopen");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"keep me").unwrap();
        log.append(b"torn").unwrap();
        log.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        let mut log = FrameLog::open_append(&path).unwrap();
        assert_eq!(log.frames(), 1);
        log.append(b"after recovery").unwrap();
        let r = FrameLog::replay(&path).unwrap();
        assert_eq!(r.frames, vec![b"keep me".to_vec(), b"after recovery".to_vec()]);
        assert!(!r.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let r = FrameLog::replay_bytes(&bytes);
        assert!(r.frames.is_empty());
        assert!(r.torn);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = scratch("reset");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"gone").unwrap();
        log.reset().unwrap();
        assert!(log.is_empty());
        log.append(b"fresh").unwrap();
        let r = FrameLog::replay(&path).unwrap();
        assert_eq!(r.frames, vec![b"fresh".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }
}
