//! One memory budget shared by the storage and serving caches.
//!
//! `dwc crawl --mem-budget MB` sizes everything that caches bytes from a
//! single figure: three quarters go to the segment buffer pool (the page
//! working set), one quarter to the rendered-page cache (whose entries are
//! roughly page-render sized). Keeping the split here means the CLI, the
//! benches, and the smoke tests can never disagree about what a budget
//! means.

use crate::pager::DEFAULT_PAGE_SIZE;

/// Estimated bytes of one rendered result page (XML of ~10 records), used to
/// convert the cache's byte share into an entry count.
const RENDERED_PAGE_EST: u64 = 4096;

/// A byte budget split across the buffer pool and the page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Total budget in bytes.
    pub bytes: u64,
}

impl MemoryBudget {
    /// A budget of `mb` mebibytes. Zero is rejected upstream (CLI parse and
    /// `ConfigError::ZeroMemBudget`); here it simply yields empty caches.
    pub fn from_mb(mb: u64) -> Self {
        MemoryBudget { bytes: mb.saturating_mul(1 << 20) }
    }

    /// Bytes for the segment buffer pool (3/4 of the budget).
    pub fn pool_bytes(&self) -> usize {
        usize::try_from(self.bytes / 4 * 3).unwrap_or(usize::MAX)
    }

    /// Buffer-pool frame count at the default page size.
    pub fn pool_frames(&self) -> usize {
        self.pool_bytes() / DEFAULT_PAGE_SIZE
    }

    /// Rendered-page cache capacity in entries (1/4 of the budget at
    /// ~4 KiB per rendered page).
    pub fn page_cache_entries(&self) -> usize {
        usize::try_from(self.bytes / 4 / RENDERED_PAGE_EST).unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_three_quarters_pool() {
        let b = MemoryBudget::from_mb(64);
        assert_eq!(b.bytes, 64 << 20);
        assert_eq!(b.pool_bytes(), 48 << 20);
        assert_eq!(b.pool_frames(), (48 << 20) / DEFAULT_PAGE_SIZE);
        assert_eq!(b.page_cache_entries(), (16 << 20) / 4096);
    }

    #[test]
    fn tiny_budget_degrades_gracefully() {
        let b = MemoryBudget::from_mb(0);
        assert_eq!(b.pool_frames(), 0);
        assert_eq!(b.page_cache_entries(), 0);
    }
}
