//! Sized buffer pool with clock eviction and pin counts.
//!
//! The pool owns a fixed number of page frames (its byte budget divided by
//! the page size). A lookup returns a [`PageRef`] guard; while any guard for
//! a frame is alive the frame is *pinned* — the pin count is simply the
//! `Arc` strong count on the frame's buffer, so pinning cannot be forgotten
//! and needs no unsafe. Eviction is the classic clock (second-chance) sweep:
//! the hand skips pinned frames, clears referenced bits, and reclaims the
//! first unpinned, unreferenced frame. If every frame is pinned the read
//! falls through to an unpooled *overflow* buffer rather than deadlocking —
//! bounded memory degrades to extra reads, never to a stall.

use crate::pager::{SegmentId, SegmentPager};
use std::collections::HashMap;
use std::io;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One page's bytes plus how many of them are valid (the final page of a
/// segment is short).
#[derive(Debug)]
pub struct PageBuf {
    bytes: Box<[u8]>,
    valid: usize,
}

/// A pinned view of one page. Deref yields the valid bytes; dropping the
/// guard unpins the frame.
#[derive(Debug, Clone)]
pub struct PageRef(Arc<PageBuf>);

impl Deref for PageRef {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0.bytes[..self.0.valid]
    }
}

#[derive(Debug)]
struct Frame {
    key: Option<(SegmentId, u32)>,
    referenced: bool,
    data: Arc<PageBuf>,
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<(SegmentId, u32), usize>,
    hand: usize,
}

/// Cumulative pool counters (monotonic; sampled by benches and the smoke
/// tests to prove the pool, not resident growth, absorbed the working set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Lookups served from a resident frame.
    pub hits: u64,
    /// Lookups that had to fault the page in.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Reads that bypassed the pool because every frame was pinned.
    pub overflow_reads: u64,
}

/// Fixed-capacity page cache over a [`SegmentPager`].
#[derive(Debug)]
pub struct BufferPool {
    page_size: usize,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    overflow_reads: AtomicU64,
}

impl BufferPool {
    /// A pool of `capacity` frames of `page_size` bytes each. Zero capacity
    /// is allowed: every read becomes an overflow read (useful as a
    /// worst-case baseline).
    pub fn new(capacity: usize, page_size: usize) -> Self {
        BufferPool {
            page_size,
            capacity,
            inner: Mutex::new(PoolInner { frames: Vec::new(), map: HashMap::new(), hand: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            overflow_reads: AtomicU64::new(0),
        }
    }

    /// A pool sized from a byte budget.
    pub fn with_budget(budget_bytes: usize, page_size: usize) -> Self {
        Self::new(budget_bytes / page_size.max(1), page_size)
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The frame/page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            overflow_reads: self.overflow_reads.load(Ordering::Relaxed),
        }
    }

    /// Returns (pinning) page `page_no` of `seg`, faulting it in if absent.
    pub fn get(
        &self,
        pager: &dyn SegmentPager,
        seg: SegmentId,
        page_no: u32,
    ) -> io::Result<PageRef> {
        let key = (seg, page_no);
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        if let Some(&i) = inner.map.get(&key) {
            inner.frames[i].referenced = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PageRef(Arc::clone(&inner.frames[i].data)));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Grow lazily up to capacity, then run the clock hand.
        let slot = if inner.frames.len() < self.capacity {
            inner.frames.push(Frame {
                key: None,
                referenced: false,
                data: Arc::new(PageBuf { bytes: Box::from(vec![0u8; self.page_size]), valid: 0 }),
            });
            Some(inner.frames.len() - 1)
        } else {
            self.clock_victim(&mut inner)
        };

        let Some(i) = slot else {
            // Every frame pinned: serve from an unpooled buffer.
            drop(inner);
            self.overflow_reads.fetch_add(1, Ordering::Relaxed);
            let mut bytes = vec![0u8; self.page_size];
            let valid = pager.read_page(seg, page_no, &mut bytes)?;
            return Ok(PageRef(Arc::new(PageBuf { bytes: bytes.into_boxed_slice(), valid })));
        };

        if let Some(old) = inner.frames[i].key.take() {
            inner.map.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        // The victim is unpinned (strong count 1), so its buffer is reusable
        // in place — page loads allocate only while the pool grows.
        {
            let frame = &mut inner.frames[i];
            let buf = Arc::get_mut(&mut frame.data).expect("victim frame was pinned");
            let valid = pager.read_page(seg, page_no, &mut buf.bytes)?;
            buf.valid = valid;
            frame.key = Some(key);
            frame.referenced = true;
        }
        inner.map.insert(key, i);
        Ok(PageRef(Arc::clone(&inner.frames[i].data)))
    }

    /// One full clock rotation with second chances, one more without:
    /// returns the first unpinned frame whose referenced bit has been spent,
    /// or `None` if everything is pinned.
    fn clock_victim(&self, inner: &mut PoolInner) -> Option<usize> {
        let n = inner.frames.len();
        if n == 0 {
            return None;
        }
        for _ in 0..2 * n {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[i];
            if Arc::strong_count(&frame.data) > 1 {
                continue; // pinned by a live PageRef
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Some(i);
        }
        None
    }

    /// Copies segment bytes `[start, start + out.len())` into `out`, pinning
    /// each touched page only for the duration of its copy. Errors with
    /// `UnexpectedEof` if the range runs past the segment.
    pub fn read_range(
        &self,
        pager: &dyn SegmentPager,
        seg: SegmentId,
        start: u64,
        out: &mut [u8],
    ) -> io::Result<()> {
        let ps = self.page_size as u64;
        let mut pos = start;
        let mut filled = 0usize;
        while filled < out.len() {
            let page_no = u32::try_from(pos / ps).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "segment offset out of page range")
            })?;
            let in_page = (pos % ps) as usize;
            let page = self.get(pager, seg, page_no)?;
            if in_page >= page.len() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment range past end of segment",
                ));
            }
            let n = (page.len() - in_page).min(out.len() - filled);
            out[filled..filled + n].copy_from_slice(&page[in_page..in_page + n]);
            filled += n;
            pos += n as u64;
        }
        Ok(())
    }

    /// Reads one little-endian `u64` at byte offset `at`.
    pub fn read_u64(&self, pager: &dyn SegmentPager, seg: SegmentId, at: u64) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.read_range(pager, seg, at, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pager_with_data(pages: usize, page_size: usize) -> MemPager {
        let mut p = MemPager::new(page_size);
        let s = p.create_segment().unwrap();
        let bytes: Vec<u8> = (0..pages * page_size).map(|i| (i % 251) as u8).collect();
        p.append(s, &bytes).unwrap();
        p
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let p = pager_with_data(4, 64);
        let pool = BufferPool::new(2, 64);
        let a = pool.get(&p, 0, 0).unwrap();
        assert_eq!(a[0], 0);
        drop(a);
        pool.get(&p, 0, 0).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn clock_evicts_cold_pages_under_pressure() {
        let p = pager_with_data(8, 64);
        let pool = BufferPool::new(2, 64);
        for page in 0..8 {
            let r = pool.get(&p, 0, page).unwrap();
            assert_eq!(r[0], ((page as usize * 64) % 251) as u8);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.evictions, 6, "8 loads through 2 frames evict 6 times");
        assert_eq!(s.overflow_reads, 0);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let p = pager_with_data(8, 64);
        let pool = BufferPool::new(2, 64);
        let pinned = pool.get(&p, 0, 0).unwrap();
        // Sweep 6 other pages through the remaining single frame.
        for page in 1..7 {
            pool.get(&p, 0, page).unwrap();
        }
        // Page 0 must still be resident (a hit), because the guard pinned it.
        let before = pool.stats().hits;
        let again = pool.get(&p, 0, 0).unwrap();
        assert_eq!(pool.stats().hits, before + 1);
        assert_eq!(pinned[0], again[0]);
    }

    #[test]
    fn all_pinned_falls_back_to_overflow_reads() {
        let p = pager_with_data(4, 64);
        let pool = BufferPool::new(2, 64);
        let _a = pool.get(&p, 0, 0).unwrap();
        let _b = pool.get(&p, 0, 1).unwrap();
        let c = pool.get(&p, 0, 2).unwrap();
        assert_eq!(c[0], 128);
        assert_eq!(pool.stats().overflow_reads, 1);
    }

    #[test]
    fn zero_capacity_pool_always_overflows() {
        let p = pager_with_data(2, 64);
        let pool = BufferPool::new(0, 64);
        for _ in 0..3 {
            pool.get(&p, 0, 0).unwrap();
        }
        assert_eq!(pool.stats().overflow_reads, 3);
    }

    #[test]
    fn read_range_stitches_across_pages() {
        let p = pager_with_data(4, 64);
        let pool = BufferPool::new(2, 64);
        let mut out = vec![0u8; 100];
        pool.read_range(&p, 0, 30, &mut out).unwrap();
        let expect: Vec<u8> = (30..130).map(|i| (i % 251) as u8).collect();
        assert_eq!(out, expect);
        // Past the end errors rather than zero-fills.
        let mut over = vec![0u8; 64];
        let err = pool.read_range(&p, 0, 4 * 64 - 10, &mut over).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
