//! Packed, offset-indexed `u32` list columns.
//!
//! One [`ListStore`] holds `count` variable-length lists of `u32`s in two
//! segments:
//!
//! * an **offsets** segment of `count` fixed-width little-endian `u64`
//!   *end offsets* (list `i` spans elements `offsets[i-1] .. offsets[i]`,
//!   with `offsets[-1] = 0`), and
//! * a **data** segment of the concatenated elements, packed little-endian
//!   4 bytes each.
//!
//! This is the arena encoding shared by record values (`rid → ValueId`s) and
//! postings (`ValueId → record ids`): random access costs at most two pool
//! lookups for the bounds plus the data pages the list actually covers, and
//! sequential scans stream both segments in page order.

use crate::pager::{SegmentId, SegmentPager};
use crate::pool::BufferPool;
use std::io;

/// Streaming writer producing a [`ListStore`]. Appends are buffered and
/// flushed in ~1 MiB runs so building from a generator is one sequential
/// pass per segment.
#[derive(Debug)]
pub struct ListWriter {
    seg_offsets: SegmentId,
    seg_data: SegmentId,
    count: u64,
    total_elems: u64,
    off_buf: Vec<u8>,
    data_buf: Vec<u8>,
}

const WRITER_FLUSH: usize = 1 << 20;

impl ListWriter {
    /// Creates the two backing segments in `pager`.
    pub fn create(pager: &mut dyn SegmentPager) -> io::Result<Self> {
        Ok(ListWriter {
            seg_offsets: pager.create_segment()?,
            seg_data: pager.create_segment()?,
            count: 0,
            total_elems: 0,
            off_buf: Vec::new(),
            data_buf: Vec::new(),
        })
    }

    /// Appends one list, returning its index.
    pub fn push(&mut self, pager: &mut dyn SegmentPager, vals: &[u32]) -> io::Result<u64> {
        for &v in vals {
            self.data_buf.extend_from_slice(&v.to_le_bytes());
        }
        self.total_elems += vals.len() as u64;
        self.off_buf.extend_from_slice(&self.total_elems.to_le_bytes());
        let idx = self.count;
        self.count += 1;
        if self.data_buf.len() >= WRITER_FLUSH || self.off_buf.len() >= WRITER_FLUSH {
            self.flush(pager)?;
        }
        Ok(idx)
    }

    fn flush(&mut self, pager: &mut dyn SegmentPager) -> io::Result<()> {
        if !self.off_buf.is_empty() {
            pager.append(self.seg_offsets, &self.off_buf)?;
            self.off_buf.clear();
        }
        if !self.data_buf.is_empty() {
            pager.append(self.seg_data, &self.data_buf)?;
            self.data_buf.clear();
        }
        Ok(())
    }

    /// Flushes and seals the store.
    pub fn finish(mut self, pager: &mut dyn SegmentPager) -> io::Result<ListStore> {
        self.flush(pager)?;
        Ok(ListStore {
            seg_offsets: self.seg_offsets,
            seg_data: self.seg_data,
            count: self.count,
            total_elems: self.total_elems,
        })
    }
}

/// A sealed, read-only collection of packed `u32` lists (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListStore {
    seg_offsets: SegmentId,
    seg_data: SegmentId,
    count: u64,
    total_elems: u64,
}

impl ListStore {
    /// Reconstructs a store from persisted metadata (see
    /// [`SegmentTable`](crate::table::SegmentTable) meta files).
    pub fn from_parts(
        seg_offsets: SegmentId,
        seg_data: SegmentId,
        count: u64,
        total_elems: u64,
    ) -> Self {
        ListStore { seg_offsets, seg_data, count, total_elems }
    }

    /// `(offsets segment, data segment, count, total elements)` for
    /// persistence.
    pub fn parts(&self) -> (SegmentId, SegmentId, u64, u64) {
        (self.seg_offsets, self.seg_data, self.count, self.total_elems)
    }

    /// Number of lists.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the store holds no lists.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total elements across all lists.
    pub fn total_elems(&self) -> u64 {
        self.total_elems
    }

    /// Element bounds `[start, end)` of list `i`.
    pub fn bounds(
        &self,
        pager: &dyn SegmentPager,
        pool: &BufferPool,
        i: u64,
    ) -> io::Result<(u64, u64)> {
        assert!(i < self.count, "list index {i} out of range ({})", self.count);
        if i == 0 {
            Ok((0, pool.read_u64(pager, self.seg_offsets, 0)?))
        } else {
            let mut buf = [0u8; 16];
            pool.read_range(pager, self.seg_offsets, (i - 1) * 8, &mut buf)?;
            let start = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
            let end = u64::from_le_bytes(buf[8..].try_into().expect("8 bytes"));
            Ok((start, end))
        }
    }

    /// Length of list `i` in elements.
    pub fn list_len(
        &self,
        pager: &dyn SegmentPager,
        pool: &BufferPool,
        i: u64,
    ) -> io::Result<usize> {
        let (s, e) = self.bounds(pager, pool, i)?;
        Ok((e - s) as usize)
    }

    /// Appends list `i`'s elements to `out`.
    pub fn read_into(
        &self,
        pager: &dyn SegmentPager,
        pool: &BufferPool,
        i: u64,
        out: &mut Vec<u32>,
    ) -> io::Result<()> {
        let (s, e) = self.bounds(pager, pool, i)?;
        self.read_elems_into(pager, pool, s, e, out)
    }

    /// Appends elements `[list_start + lo, list_start + hi)` of list `i` to
    /// `out` — the pagination path: a result page touches only its slice of
    /// a postings list, not the whole list.
    pub fn read_slice_into(
        &self,
        pager: &dyn SegmentPager,
        pool: &BufferPool,
        i: u64,
        lo: usize,
        hi: usize,
        out: &mut Vec<u32>,
    ) -> io::Result<()> {
        let (s, e) = self.bounds(pager, pool, i)?;
        let lo = s + lo as u64;
        let hi = (s + hi as u64).min(e);
        self.read_elems_into(pager, pool, lo, hi.max(lo), out)
    }

    fn read_elems_into(
        &self,
        pager: &dyn SegmentPager,
        pool: &BufferPool,
        elem_start: u64,
        elem_end: u64,
        out: &mut Vec<u32>,
    ) -> io::Result<()> {
        let n = (elem_end - elem_start) as usize;
        if n == 0 {
            return Ok(());
        }
        let mut bytes = vec![0u8; n * 4];
        pool.read_range(pager, self.seg_data, elem_start * 4, &mut bytes)?;
        out.reserve(n);
        for chunk in bytes.chunks_exact(4) {
            out.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
        }
        Ok(())
    }

    /// Streams every list in index order through `f(index, elements)`,
    /// reading both segments sequentially. This is the bounded-RSS scan the
    /// postings build uses: memory is one scratch list plus whatever the
    /// pool keeps.
    pub fn scan<F>(&self, pager: &dyn SegmentPager, pool: &BufferPool, mut f: F) -> io::Result<()>
    where
        F: FnMut(u64, &[u32]),
    {
        let mut offsets = SeqReader::new(self.seg_offsets, pool);
        let mut data = SeqReader::new(self.seg_data, pool);
        let mut scratch: Vec<u32> = Vec::new();
        let mut byte_buf: Vec<u8> = Vec::new();
        let mut prev = 0u64;
        for i in 0..self.count {
            let mut off = [0u8; 8];
            offsets.read_exact(pager, &mut off)?;
            let end = u64::from_le_bytes(off);
            let n = (end - prev) as usize;
            prev = end;
            byte_buf.resize(n * 4, 0);
            data.read_exact(pager, &mut byte_buf)?;
            scratch.clear();
            scratch.extend(
                byte_buf
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))),
            );
            f(i, &scratch);
        }
        Ok(())
    }
}

/// Sequential cursor over one segment, holding the current page pinned so
/// consecutive small reads cost no pool lookups.
struct SeqReader<'a> {
    seg: SegmentId,
    pool: &'a BufferPool,
    page_no: u32,
    in_page: usize,
    page: Option<crate::pool::PageRef>,
}

impl<'a> SeqReader<'a> {
    fn new(seg: SegmentId, pool: &'a BufferPool) -> Self {
        SeqReader { seg, pool, page_no: 0, in_page: 0, page: None }
    }

    fn read_exact(&mut self, pager: &dyn SegmentPager, out: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < out.len() {
            if self.page.is_none() {
                self.page = Some(self.pool.get(pager, self.seg, self.page_no)?);
            }
            let page = self.page.as_ref().expect("page just ensured");
            if self.in_page >= page.len() {
                if page.len() < self.pool.page_size() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "sequential read past end of segment",
                    ));
                }
                self.page = None;
                self.page_no += 1;
                self.in_page = 0;
                continue;
            }
            let n = (page.len() - self.in_page).min(out.len() - filled);
            out[filled..filled + n].copy_from_slice(&page[self.in_page..self.in_page + n]);
            self.in_page += n;
            filled += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn build(lists: &[Vec<u32>], page_size: usize) -> (MemPager, BufferPool, ListStore) {
        let mut pager = MemPager::new(page_size);
        let mut w = ListWriter::create(&mut pager).unwrap();
        for l in lists {
            w.push(&mut pager, l).unwrap();
        }
        let store = w.finish(&mut pager).unwrap();
        let pool = BufferPool::new(4, page_size);
        (pager, pool, store)
    }

    fn sample_lists() -> Vec<Vec<u32>> {
        (0..200u32).map(|i| (0..(i % 17)).map(|j| i * 1000 + j).collect()).collect()
    }

    #[test]
    fn random_access_round_trips() {
        let lists = sample_lists();
        let (pager, pool, store) = build(&lists, 128);
        assert_eq!(store.len(), 200);
        for (i, expect) in lists.iter().enumerate() {
            let mut got = Vec::new();
            store.read_into(&pager, &pool, i as u64, &mut got).unwrap();
            assert_eq!(&got, expect, "list {i}");
            assert_eq!(store.list_len(&pager, &pool, i as u64).unwrap(), expect.len());
        }
    }

    #[test]
    fn slices_read_only_their_window() {
        let lists = vec![(0..100u32).collect::<Vec<_>>(), vec![7, 8, 9]];
        let (pager, pool, store) = build(&lists, 128);
        let mut got = Vec::new();
        store.read_slice_into(&pager, &pool, 0, 10, 20, &mut got).unwrap();
        assert_eq!(got, (10..20u32).collect::<Vec<_>>());
        got.clear();
        // A window clamped at the end of the list.
        store.read_slice_into(&pager, &pool, 1, 1, 50, &mut got).unwrap();
        assert_eq!(got, vec![8, 9]);
    }

    #[test]
    fn scan_visits_all_lists_in_order() {
        let lists = sample_lists();
        let (pager, pool, store) = build(&lists, 128);
        let mut seen = Vec::new();
        store.scan(&pager, &pool, |i, elems| seen.push((i, elems.to_vec()))).unwrap();
        assert_eq!(seen.len(), lists.len());
        for (i, (idx, elems)) in seen.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(elems, &lists[i]);
        }
    }

    #[test]
    fn empty_lists_and_empty_store() {
        let (pager, pool, store) = build(&[], 64);
        assert!(store.is_empty());
        store.scan(&pager, &pool, |_, _| panic!("no lists")).unwrap();
        let lists = vec![vec![], vec![5], vec![]];
        let (pager, pool, store) = build(&lists, 64);
        for (i, expect) in lists.iter().enumerate() {
            let mut got = Vec::new();
            store.read_into(&pager, &pool, i as u64, &mut got).unwrap();
            assert_eq!(&got, expect);
        }
    }
}
