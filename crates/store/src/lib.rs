//! Out-of-core packed storage for structured web sources.
//!
//! The paper's largest corpus (~500k DBLP records) fits in RAM; observing
//! selection-policy behavior at the scales where asymptotics diverge (Sheng
//! et al., PODS 2012) needs sources 100–200× larger than that. This crate is
//! the storage engine that makes those crawls possible with bounded RSS:
//!
//! * [`pager`] — fixed-size pages behind a pluggable [`SegmentPager`]:
//!   an in-RAM pager ([`MemPager`]) and a file-backed pager ([`FilePager`]);
//! * [`pool`] — a sized [`BufferPool`] with clock (second-chance) eviction
//!   and pin counts, so hot pages stay resident under a byte budget;
//! * [`list`] — packed, offset-indexed `u32` list columns ([`ListStore`]):
//!   one fixed-width end-offset segment plus one packed little-endian data
//!   segment, the layout shared by record values and postings;
//! * [`table`] — [`SegmentTable`], a paged universal table + inverted index
//!   serving the exact record/postings shapes the resident server produces,
//!   so a storage-backend swap is invisible above the `DataSource` seam;
//! * [`log`] — [`FrameLog`], length+checksum-framed log-structured appends
//!   (the substrate for the crawler's incremental state journal);
//! * [`budget`] — one [`MemoryBudget`] splitting a `--mem-budget` figure
//!   across the buffer pool and the rendered-page cache.
//!
//! Layering: this crate sits between `dwc-model` (value interning, schema)
//! and the server/crawler crates. It knows nothing about queries or policies
//! — exactly the property that lets resident and paged backends produce
//! bit-identical crawl reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod list;
pub mod log;
pub mod pager;
pub mod pool;
pub mod table;

pub use budget::MemoryBudget;
pub use list::{ListStore, ListWriter};
pub use log::{FrameLog, ReplayedLog};
pub use pager::{FilePager, MemPager, SegmentId, SegmentPager, DEFAULT_PAGE_SIZE};
pub use pool::{BufferPool, PageRef, PoolStats};
pub use table::{SegmentTable, SegmentTableBuilder};

/// FNV-1a 64-bit hash, the framing checksum shared by the checkpoint store,
/// the interner spill image and [`FrameLog`] — one arithmetic detects every
/// kind of torn or corrupt image. Re-exported from `dwc_model::packed` so
/// there is exactly one implementation.
pub use dwc_model::packed::fnv1a64;
