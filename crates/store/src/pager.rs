//! Pluggable page-granular segment storage.
//!
//! A *segment* is an append-only byte sequence addressed in fixed-size pages.
//! Everything above this layer (buffer pool, list columns, the paged table)
//! speaks `(segment, page)` coordinates; everything below is one of two
//! pagers with identical semantics:
//!
//! * [`MemPager`] — segments are `Vec<u8>`s. The reference backend: unit
//!   tests and parity proofs run against it, and a paged table over it is
//!   byte-for-byte the same as over files.
//! * [`FilePager`] — one file per segment under a directory, positioned
//!   reads via `read_at` (no seek contention, `&self` reads), buffered
//!   appends. This is the out-of-core backend.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

/// Identifier of a segment within one pager.
pub type SegmentId = u32;

/// Default page size (8 KiB): large enough that offset entries and packed
/// values amortize the per-page bookkeeping, small enough that a few thousand
/// buffered pages stay in single-digit MiB.
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Page-granular append-only segment storage.
///
/// Appends go through `&mut self` (single writer during builds and journal
/// appends); `read_page` takes `&self` so a shared buffer pool can fault
/// pages in from concurrent server threads.
pub trait SegmentPager: Send + Sync + std::fmt::Debug {
    /// The fixed page size in bytes (a multiple of 8, so fixed-width offset
    /// entries never straddle a page boundary).
    fn page_size(&self) -> usize;

    /// Number of segments created so far.
    fn num_segments(&self) -> u32;

    /// Current length of `seg` in bytes.
    fn segment_len(&self, seg: SegmentId) -> u64;

    /// Creates a new empty segment, returning its id.
    fn create_segment(&mut self) -> io::Result<SegmentId>;

    /// Appends `bytes` to `seg`, returning the byte offset the write started
    /// at.
    fn append(&mut self, seg: SegmentId, bytes: &[u8]) -> io::Result<u64>;

    /// Reads page `page_no` of `seg` into `buf` (which is `page_size` long),
    /// returning how many bytes are valid — the final page of a segment may
    /// be short. Reading entirely past the end returns `Ok(0)`.
    fn read_page(&self, seg: SegmentId, page_no: u32, buf: &mut [u8]) -> io::Result<usize>;

    /// Flushes buffered appends to durable storage (no-op for RAM).
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn check_page_size(page_size: usize) -> usize {
    assert!(
        page_size >= 64 && page_size.is_multiple_of(8),
        "page size must be a multiple of 8 and at least 64 bytes, got {page_size}"
    );
    page_size
}

/// In-RAM pager: each segment is a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct MemPager {
    page_size: usize,
    segments: Vec<Vec<u8>>,
}

impl MemPager {
    /// Creates an empty in-RAM pager with the given page size.
    pub fn new(page_size: usize) -> Self {
        MemPager { page_size: check_page_size(page_size), segments: Vec::new() }
    }
}

impl SegmentPager for MemPager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_segments(&self) -> u32 {
        self.segments.len() as u32
    }

    fn segment_len(&self, seg: SegmentId) -> u64 {
        self.segments[seg as usize].len() as u64
    }

    fn create_segment(&mut self) -> io::Result<SegmentId> {
        self.segments.push(Vec::new());
        Ok(self.segments.len() as u32 - 1)
    }

    fn append(&mut self, seg: SegmentId, bytes: &[u8]) -> io::Result<u64> {
        let s = &mut self.segments[seg as usize];
        let at = s.len() as u64;
        s.extend_from_slice(bytes);
        Ok(at)
    }

    fn read_page(&self, seg: SegmentId, page_no: u32, buf: &mut [u8]) -> io::Result<usize> {
        let s = &self.segments[seg as usize];
        let start = (page_no as usize).saturating_mul(self.page_size).min(s.len());
        let end = (start + self.page_size).min(s.len());
        buf[..end - start].copy_from_slice(&s[start..end]);
        Ok(end - start)
    }
}

/// File-backed pager: one `seg-NNNNN.col` file per segment under a
/// directory. Reads are positioned (`read_at`), so they need no seek state
/// and work through `&self`; appends are buffered per segment and flushed at
/// 1 MiB boundaries to keep streaming builds at sequential-write speed.
#[derive(Debug)]
pub struct FilePager {
    dir: PathBuf,
    page_size: usize,
    segments: Vec<SegmentFile>,
}

#[derive(Debug)]
struct SegmentFile {
    file: File,
    /// Durable length (bytes already written to the file).
    flushed: u64,
    /// Pending appended bytes not yet written out.
    tail: Vec<u8>,
}

/// Append-buffer flush threshold.
const FLUSH_BYTES: usize = 1 << 20;

impl FilePager {
    /// Creates a pager over `dir` (created if absent). Existing segment
    /// files in the directory are reopened in id order, so a pager over a
    /// previously written directory sees its segments again.
    pub fn open(dir: &Path, page_size: usize) -> io::Result<Self> {
        let page_size = check_page_size(page_size);
        std::fs::create_dir_all(dir)?;
        let mut segments = Vec::new();
        loop {
            let path = segment_path(dir, segments.len() as u32);
            if !path.exists() {
                break;
            }
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            let flushed = file.metadata()?.len();
            segments.push(SegmentFile { file, flushed, tail: Vec::new() });
        }
        Ok(FilePager { dir: dir.to_path_buf(), page_size, segments })
    }

    /// The directory holding this pager's segment files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn flush_segment(seg: &mut SegmentFile) -> io::Result<()> {
        if !seg.tail.is_empty() {
            use std::os::unix::fs::FileExt as _;
            seg.file.write_all_at(&seg.tail, seg.flushed)?;
            seg.flushed += seg.tail.len() as u64;
            seg.tail.clear();
        }
        Ok(())
    }
}

fn segment_path(dir: &Path, seg: SegmentId) -> PathBuf {
    dir.join(format!("seg-{seg:05}.col"))
}

impl SegmentPager for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_segments(&self) -> u32 {
        self.segments.len() as u32
    }

    fn segment_len(&self, seg: SegmentId) -> u64 {
        let s = &self.segments[seg as usize];
        s.flushed + s.tail.len() as u64
    }

    fn create_segment(&mut self) -> io::Result<SegmentId> {
        let id = self.segments.len() as u32;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(segment_path(&self.dir, id))?;
        self.segments.push(SegmentFile { file, flushed: 0, tail: Vec::new() });
        Ok(id)
    }

    fn append(&mut self, seg: SegmentId, bytes: &[u8]) -> io::Result<u64> {
        let s = &mut self.segments[seg as usize];
        let at = s.flushed + s.tail.len() as u64;
        s.tail.extend_from_slice(bytes);
        if s.tail.len() >= FLUSH_BYTES {
            Self::flush_segment(s)?;
        }
        Ok(at)
    }

    fn read_page(&self, seg: SegmentId, page_no: u32, buf: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt as _;
        let s = &self.segments[seg as usize];
        let len = s.flushed + s.tail.len() as u64;
        let start = (u64::from(page_no) * self.page_size as u64).min(len);
        let end = (start + self.page_size as u64).min(len);
        let want = (end - start) as usize;
        // Split the read between the durable prefix and the append buffer.
        let from_file = (s.flushed.saturating_sub(start) as usize).min(want);
        if from_file > 0 {
            s.file.read_exact_at(&mut buf[..from_file], start)?;
        }
        if from_file < want {
            let tail_start = (start + from_file as u64 - s.flushed) as usize;
            buf[from_file..want]
                .copy_from_slice(&s.tail[tail_start..tail_start + want - from_file]);
        }
        Ok(want)
    }

    fn sync(&mut self) -> io::Result<()> {
        for s in &mut self.segments {
            Self::flush_segment(s)?;
            s.file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("dwc-pager-{}-{n}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(pager: &mut dyn SegmentPager) {
        let a = pager.create_segment().unwrap();
        let b = pager.create_segment().unwrap();
        assert_ne!(a, b);
        assert_eq!(pager.append(a, &[1, 2, 3]).unwrap(), 0);
        let big: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(pager.append(a, &big).unwrap(), 3);
        pager.append(b, b"other segment").unwrap();
        assert_eq!(pager.segment_len(a), 3 + 4000);
        assert_eq!(pager.segment_len(b), 13);

        let ps = pager.page_size();
        let mut buf = vec![0u8; ps];
        let n = pager.read_page(a, 0, &mut buf).unwrap();
        assert_eq!(n, ps.min(4003));
        assert_eq!(&buf[..3], &[1, 2, 3]);
        // Final (short) page.
        let last = (4003 / ps) as u32;
        let n = pager.read_page(a, last, &mut buf).unwrap();
        assert_eq!(n, 4003 - last as usize * ps);
        // Past the end.
        assert_eq!(pager.read_page(a, last + 2, &mut buf).unwrap(), 0);
        assert_eq!(pager.read_page(b, 0, &mut buf).unwrap(), 13);
        assert_eq!(&buf[..13], b"other segment");
    }

    #[test]
    fn mem_pager_round_trips() {
        let mut p = MemPager::new(128);
        exercise(&mut p);
    }

    #[test]
    fn file_pager_round_trips_and_reopens() {
        let dir = scratch_dir("roundtrip");
        let mut p = FilePager::open(&dir, 128).unwrap();
        exercise(&mut p);
        p.sync().unwrap();
        let len_a = p.segment_len(0);
        drop(p);
        // Reopen: same segments, same bytes.
        let p2 = FilePager::open(&dir, 128).unwrap();
        assert_eq!(p2.num_segments(), 2);
        assert_eq!(p2.segment_len(0), len_a);
        let mut buf = vec![0u8; 128];
        let n = p2.read_page(0, 0, &mut buf).unwrap();
        assert_eq!(n, 128);
        assert_eq!(&buf[..3], &[1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_pager_reads_buffered_tail() {
        let dir = scratch_dir("tail");
        let mut p = FilePager::open(&dir, 64).unwrap();
        let s = p.create_segment().unwrap();
        p.append(s, b"unflushed bytes").unwrap();
        // Nothing flushed yet; the read must still see the append buffer.
        let mut buf = vec![0u8; 64];
        let n = p.read_page(s, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"unflushed bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_page_size_rejected() {
        MemPager::new(100);
    }
}
