//! # deep-web-crawler
//!
//! A reproduction of *"Query Selection Techniques for Efficient Crawling of
//! Structured Web Sources"* (Wu, Wen, Liu, Ma — ICDE 2006): a hidden-web
//! database crawler whose central component is the **query selection policy**
//! — how to pick the next attribute value to query so that database coverage
//! grows with the fewest communication rounds.
//!
//! The workspace crates, re-exported here:
//!
//! * [`model`] (`dwc-model`) — records, the attribute-value graph (AVG),
//!   connectivity, degree distributions, weighted dominating sets;
//! * [`stats`] (`dwc-stats`) — Zipf sampling, Student-t, capture–recapture,
//!   PMI, regression;
//! * [`server`] (`dwc-server`) — the simulated structured web-database
//!   server (pagination, result caps, totals, XML wire format, faults);
//! * [`datagen`] (`dwc-datagen`) — generative domain datasets standing in
//!   for eBay / ACM / DBLP / IMDB / Amazon-DVD;
//! * [`store`] (`dwc-store`) — out-of-core packed storage: segment files,
//!   pluggable pagers, the clock-eviction buffer pool, the checksummed frame
//!   log, and the shared memory budget;
//! * [`core`] (`dwc-core`) — the crawler and its selection policies (BFS,
//!   DFS, Random, greedy link-based, GL+MMMI, domain-knowledge).
//!
//! ## Quickstart
//!
//! ```
//! use deep_web_crawler::prelude::*;
//!
//! // A tiny structured source (the paper's Figure 1 example).
//! let table = deep_web_crawler::model::fixtures::figure1_table();
//! let interface = InterfaceSpec::permissive(table.schema(), 10);
//! let server = WebDbServer::new(table, interface);
//!
//! // Crawl it greedily from seed value (A, "a2").
//! let config = CrawlConfig::builder().known_target_size(5).build().unwrap();
//! let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
//! crawler.add_seed("A", "a2");
//! let report = crawler.run();
//! assert_eq!(report.records, 5); // full coverage
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dwc_core as core;
pub use dwc_datagen as datagen;
pub use dwc_model as model;
pub use dwc_server as server;
pub use dwc_stats as stats;
pub use dwc_store as store;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use dwc_core::policy::{MmmiConfig, PolicyKind, Saturation, SelectionPolicy};
    pub use dwc_core::{
        run_fleet, run_fleet_supervised, shrink_plan, AbortPolicy, AllocationStrategy,
        BreakerConfig, CancelToken, ChaosKind, ChaosPlan, ChaosState, ChaosTally, Checkpoint,
        CheckpointStore, CircuitBreaker, ClientPool, ConfigError, Connection, CrawlConfig,
        CrawlError, CrawlEvent, CrawlReport, CrawlTrace, Crawler, DataSource, DomainTable,
        EventSink, FaultKind, FaultPlan, FaultPlanSource, FaultySource, FleetConfig,
        FleetController, FleetJob, FleetReport, JobHealth, JsonlSink, LatencyModel, MemorySink,
        MetricsRegistry, ProberMode, QueryMode, RateLimit, RetryPolicy, SchedulerStats,
        ServeConfig, ServiceReport, SourceRequest, SourceService, StopReason, StoreError, Tenant,
        TenantId, UsageLedger,
    };
    pub use dwc_datagen::presets::Preset;
    pub use dwc_datagen::{PairedDataset, PairedSpec};
    pub use dwc_model::{AvGraph, Schema, UniversalTable};
    pub use dwc_server::{FaultPolicy, InterfaceSpec, Query, WebDbServer};
}
