//! `dwc` — command-line front end for the deep-web crawler.
//!
//! ```text
//! dwc generate <ebay|acm|dblp|imdb> [--scale S] [--seed N] [--out FILE.csv]
//! dwc graph <FILE.csv>
//! dwc crawl <FILE.csv> [--policy bfs|dfs|random|freq|gl|mmmi]
//!           [--seed-value ATTR=VALUE]... [--budget ROUNDS] [--page-size K]
//!           [--cap N] [--coverage F] [--keyword] [--stats]
//!           [--checkpoint OUT] [--resume IN] [--trace OUT.csv]
//!           [--checkpoint-path FILE] [--checkpoint-every N]
//!           [--events FILE.jsonl]
//! dwc resume <FILE.csv> --checkpoint-path FILE [crawl flags]
//! dwc serve <FILE.csv> --seed-value ATTR=VALUE... [--connections N]
//!           [--requests R] [--queue D] [--serve-workers W]
//!           [--latency-us N|MIN:MAX] [--decode-us N] [--deadline MS]
//! ```
//!
//! `generate` writes a synthetic dataset as CSV; `graph` prints the
//! attribute-value-graph statistics of a CSV table (Figure 2 style);
//! `crawl` runs a crawl against an in-process server over the CSV table and
//! reports cost and coverage, optionally checkpointing/resuming and dumping
//! the per-query trace for plotting.
//!
//! Crash safety: `--checkpoint-path` turns on *periodic* checkpointing
//! through [`CheckpointStore`] (atomic temp-file + rename, `.bak` rotation),
//! every `--checkpoint-every` completed queries (default
//! [`DEFAULT_CHECKPOINT_EVERY`]). After a crash, `dwc resume` reloads the
//! latest intact snapshot — falling back to the `.bak` generation when the
//! primary is torn — and continues the crawl, still checkpointing into the
//! same store. The plain `--checkpoint`/`--resume` flags remain the one-shot,
//! bare-file variant.
//!
//! Observability: `--events FILE.jsonl` streams every structured crawl event
//! as one JSON line. Replaying the file through
//! `dwc_core::metrics::replay_report` reconstructs the exact final report —
//! the stream *is* the accounting, not a log of it.
//!
//! Serving tier: `dwc serve` puts the table behind a
//! [`SourceService`] (bounded queue, admission control, modeled latency)
//! and drives open client load against it, reporting throughput, shed rate,
//! and tail latency. `dwc crawl --connect N` routes a crawl through the
//! same service over a pool of N client connections — the protocol-real
//! transport — with `--deadline MS` attaching a per-request deadline.

use deep_web_crawler::core::crawler::{StopReason, DEFAULT_CHECKPOINT_EVERY};
use deep_web_crawler::core::serve::SourceService;
use deep_web_crawler::datagen::loader::{load_csv, to_csv};
use deep_web_crawler::model::components::Connectivity;
use deep_web_crawler::model::degree::DegreeDistribution;
use deep_web_crawler::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("graph") => cmd_graph(&args[1..]),
        Some("crawl") => cmd_crawl(&args[1..], false),
        Some("resume") => cmd_crawl(&args[1..], true),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}; see `dwc help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dwc: {msg}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
dwc — query-selection crawler for structured web sources

USAGE:
  dwc generate <ebay|acm|dblp|imdb> [--scale S] [--seed N] [--out FILE.csv]
  dwc graph <FILE.csv>
  dwc crawl <FILE.csv> [--policy bfs|dfs|random|freq|gl|mmmi]
            [--seed-value ATTR=VALUE]... [--budget ROUNDS] [--page-size K]
            [--cap N] [--coverage F] [--keyword] [--stats]
            [--checkpoint OUT] [--resume IN] [--trace OUT.csv]
            [--checkpoint-path FILE] [--checkpoint-every N]
            [--journal FILE] [--mem-budget MB]
            [--events FILE.jsonl]
            [--connect N] [--deadline MS] [--queue D] [--serve-workers W]
            [--latency-us N|MIN:MAX] [--decode-us N]
  dwc resume <FILE.csv> --checkpoint-path FILE [--workers N]
            [--allocation even|harvest|weighted-fair] [crawl flags]
  dwc fleet <FILE.csv> --seed-value ATTR=VALUE... [--workers N]
            [--policy bfs|dfs|random|freq|gl|mmmi] [--budget ROUNDS]
            [--slice ROUNDS] [--allocation even|harvest|weighted-fair]
            [--tenants W[:QUOTA[:PRIO]],...] [--page-size K]
            [--mem-budget MB]
  dwc serve <FILE.csv> --seed-value ATTR=VALUE... [--connections N]
            [--requests R] [--queue D] [--serve-workers W]
            [--latency-us N|MIN:MAX] [--decode-us N] [--deadline MS]
            [--page-size K]
  dwc chaos <FILE.csv> --seed-value ATTR=VALUE... [--policy P] [--budget R]
            [--page-size K] [--chaos-seed N] [--chaos-rate F]
            [--chaos-horizon N] [--chaos-kind K[,K...]] [--chaos-plan SPEC]
            [--connect N] [--serve-workers W] [--queue D] [--hedge-us N]
  dwc help

Crash safety: --checkpoint-path enables periodic, atomic checkpointing
(every --checkpoint-every queries; .bak rotation). `dwc resume` restarts
from the latest intact snapshot after a crash. --journal additionally
appends one checksummed delta frame per completed query to a frame log
(rebased at each periodic checkpoint), bounding work lost to a kill to a
single query.

Out-of-core storage: --mem-budget MB packs the table into file-backed
segments and serves it through a sized buffer pool; three quarters of the
budget go to the segment page pool, one quarter to the rendered-page
cache. Reports are bit-identical to the resident backend — only RSS
changes.

Observability: --events streams the crawl's structured event log as JSONL;
replaying it reconstructs the final report figure for figure.

Fleet scheduling: `dwc fleet` runs one crawl job per --seed-value against a
shared in-process server, multiplexed onto a bounded work-stealing pool of
--workers threads (default: available parallelism; must be >= 1). `dwc
resume --workers N` routes the resumed crawl through the same pooled
engine. --workers 0 is rejected.

Multi-tenancy: `dwc fleet --tenants SPEC` runs the fleet under a tenant
registry — comma-separated WEIGHT[:QUOTA[:PRIO]] entries, ids 0..n, jobs
assigned round-robin (job i → tenant i mod n). With `--allocation
weighted-fair` the round budget is divided by deficit round-robin over
tenant weights; QUOTA caps a tenant's total rounds (its jobs are parked at
the next slice boundary once reached) and PRIO orders dispatch within a
cycle. The report gains a per-tenant usage ledger (rounds, pages, sheds,
preemptions) that sums exactly to the fleet's total rounds.

Serving tier: `dwc serve` puts the table behind a request/response service
(bounded --queue, admission control, --latency-us service times, per-record
--decode-us cost, --deadline MS deadlines) and hammers it with --connections
closed-loop clients, reporting req/s, shed rate, and p50/p95/p99 latency.
`dwc crawl --connect N` drives the crawl itself through that service over a
round-robin pool of N connections; the crawl report is identical to the
in-process transport, and shed/cancelled requests are billed as rounds.

Chaos testing: `dwc chaos` interposes a deterministic lossy wire between
the crawl and the service. --chaos-plan takes an exact frame:kind schedule
(e.g. \"12:drop,40:stall\"; kinds: drop dup reorder corrupt stall disconnect
crash halt); otherwise a schedule is drawn from --chaos-seed / --chaos-rate
/ --chaos-horizon / --chaos-kind. The run checks the chaos invariants
(report absorption, billing conservation, replay parity) against a
fault-free baseline; a violated schedule is ddmin-shrunk and reprinted as a
reproducible --chaos-plan invocation. --hedge-us enables client hedging.
";

/// Parsed command line: positional arguments plus accumulated `--flag value`
/// pairs.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

/// Tiny flag parser: returns (positional args, flag map); repeatable flags
/// accumulate.
fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "keyword" || name == "stats" {
                flags.push((name.to_string(), "true".to_string()));
                continue;
            }
            let value =
                it.next().ok_or_else(|| format!("flag --{name} needs a value"))?.to_string();
            flags.push((name.to_string(), value));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// Parses `--workers`, rejecting 0 right at the command line — a zero-thread
/// pool is always a mistake, not something to clamp silently.
fn parse_workers(flags: &[(String, String)]) -> Result<Option<usize>, String> {
    match flag(flags, "workers") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) | Err(_) => Err("--workers must be a positive thread count".into()),
            Ok(w) => Ok(Some(w)),
        },
    }
}

/// Parses `--mem-budget MB`, rejecting 0 right at the command line — a
/// zero-byte budget can cache nothing and is always a spec error.
fn parse_mem_budget(flags: &[(String, String)]) -> Result<Option<u64>, String> {
    match flag(flags, "mem-budget") {
        None => Ok(None),
        Some(v) => match v.parse::<u64>() {
            Ok(0) | Err(_) => Err("--mem-budget must be a positive MiB count".into()),
            Ok(mb) => Ok(Some(mb)),
        },
    }
}

/// Builds the serving backend. Without `--mem-budget` the table is served
/// resident, exactly as before. With it, the table is packed into
/// file-backed segments and served out-of-core, the buffer pool and the
/// rendered-page cache both sized from the one budget
/// ([`dwc_store::MemoryBudget`]'s 3/4 : 1/4 split) — query semantics,
/// billing, and rendered bytes are identical either way.
fn build_server(
    table: UniversalTableHandle,
    interface: InterfaceSpec,
    mem_budget: Option<u64>,
) -> Result<WebDbServer, String> {
    use deep_web_crawler::store::{FilePager, MemoryBudget, SegmentTable, DEFAULT_PAGE_SIZE};
    let Some(mb) = mem_budget else { return Ok(WebDbServer::new(table, interface)) };
    let budget = MemoryBudget::from_mb(mb);
    let dir = std::env::temp_dir().join(format!("dwc-segments-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let pager = FilePager::open(&dir, DEFAULT_PAGE_SIZE)
        .map_err(|e| format!("opening segment dir {}: {e}", dir.display()))?;
    let seg = SegmentTable::from_table(&table, Box::new(pager), budget.pool_bytes())
        .map_err(|e| format!("packing segments: {e}"))?;
    eprintln!(
        "paged backend: {} records, {} KiB on disk in {} ({mb} MiB budget)",
        seg.num_records(),
        seg.storage_bytes() / 1024,
        dir.display()
    );
    Ok(WebDbServer::paged(std::sync::Arc::new(seg), interface)
        .with_page_cache(budget.page_cache_entries()))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let preset = match pos.first().map(String::as_str) {
        Some("ebay") => Preset::Ebay,
        Some("acm") => Preset::Acm,
        Some("dblp") => Preset::Dblp,
        Some("imdb") => Preset::Imdb,
        other => return Err(format!("unknown preset {other:?} (ebay|acm|dblp|imdb)")),
    };
    let scale: f64 = flag(&flags, "scale").unwrap_or("0.01").parse().map_err(|_| "bad --scale")?;
    let seed: u64 = flag(&flags, "seed").unwrap_or("1").parse().map_err(|_| "bad --seed")?;
    let table = preset.table(scale, seed);
    let csv = to_csv(&table);
    match flag(&flags, "out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} records ({} distinct values) to {path}",
                table.num_records(),
                table.num_distinct_values()
            );
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_graph(args: &[String]) -> Result<(), String> {
    let (pos, _) = parse_flags(args)?;
    let path = pos.first().ok_or("graph needs a CSV file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let table = load_csv(&text).map_err(|e| e.to_string())?;
    let graph = AvGraph::from_table(&table);
    let dd = DegreeDistribution::of_graph(&graph);
    let conn = Connectivity::analyze(&table);
    println!("records            : {}", table.num_records());
    println!("distinct values    : {}", table.num_distinct_values());
    println!("AVG edges          : {}", graph.num_edges());
    println!("max / mean degree  : {} / {:.2}", dd.max_degree(), dd.mean_degree());
    println!("largest component  : {:.1}% of records", conn.largest_component_coverage() * 100.0);
    if let Some(fit) = dd.power_law_fit() {
        println!(
            "power-law fit      : slope {:.3}, intercept {:.3}, R² {:.3}",
            fit.slope, fit.intercept, fit.r_squared
        );
    }
    Ok(())
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    Ok(match name {
        "bfs" => PolicyKind::Bfs,
        "dfs" => PolicyKind::Dfs,
        "random" => PolicyKind::Random(7),
        "freq" => PolicyKind::FreqGreedy,
        "gl" => PolicyKind::GreedyLink,
        "mmmi" => PolicyKind::Mmmi(MmmiConfig {
            trigger: Saturation::HarvestWindow { window: 32, threshold: 0.25 },
            batch: 50,
        }),
        other => return Err(format!("unknown policy {other:?} (bfs|dfs|random|freq|gl|mmmi)")),
    })
}

fn cmd_crawl(args: &[String], resume_from_store: bool) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("crawl needs a CSV file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let table = load_csv(&text).map_err(|e| e.to_string())?;
    let n = table.num_records();

    let policy = parse_policy(flag(&flags, "policy").unwrap_or("gl"))?;
    let page_size: usize =
        flag(&flags, "page-size").unwrap_or("10").parse().map_err(|_| "bad --page-size")?;
    let mut interface = InterfaceSpec::permissive(table.schema(), page_size);
    if let Some(cap) = flag(&flags, "cap") {
        interface = interface.with_result_cap(cap.parse().map_err(|_| "bad --cap")?);
    }
    let mut builder = CrawlConfig::builder().known_target_size(n);
    if let Some(b) = flag(&flags, "budget") {
        builder = builder.max_rounds(b.parse().map_err(|_| "bad --budget")?);
    }
    if let Some(c) = flag(&flags, "coverage") {
        builder = builder.target_coverage(c.parse().map_err(|_| "bad --coverage")?);
    }
    if flag(&flags, "keyword").is_some() {
        builder = builder.query_mode(QueryMode::Keyword);
    }
    if let Some(ms) = flag(&flags, "deadline") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline")?;
        builder = builder.deadline(std::time::Duration::from_millis(ms));
    }
    let store = flag(&flags, "checkpoint-path").map(CheckpointStore::new);
    if resume_from_store && store.is_none() {
        return Err("resume needs --checkpoint-path FILE".into());
    }
    if let Some(ref s) = store {
        builder = builder.checkpoint_store(s.clone());
        let every: u64 = flag(&flags, "checkpoint-every")
            .unwrap_or(&DEFAULT_CHECKPOINT_EVERY.to_string())
            .parse()
            .map_err(|_| "bad --checkpoint-every")?;
        builder = builder.checkpoint_every(every);
    } else if flag(&flags, "checkpoint-every").is_some() {
        return Err("--checkpoint-every needs --checkpoint-path FILE".into());
    }
    if let Some(journal) = flag(&flags, "journal") {
        builder = builder.journal_path(journal);
    }
    let mem_budget = parse_mem_budget(&flags)?;
    if let Some(mb) = mem_budget {
        builder = builder.mem_budget_mb(mb);
    }
    let config = builder.build().map_err(|e| e.to_string())?;

    let workers = parse_workers(&flags)?;
    if workers.is_some() && !resume_from_store {
        return Err("--workers applies to `dwc resume` and `dwc fleet`".into());
    }

    let server = build_server(table, interface, mem_budget)?;

    if let Some(connections) = parse_connect(&flags)? {
        if resume_from_store || flag(&flags, "resume").is_some() {
            return Err("--connect applies to fresh crawls, not resume".into());
        }
        let config_serve = parse_serve_flags(&flags)?.build().map_err(|e| e.to_string())?;
        let service = SourceService::start(std::sync::Arc::new(server), config_serve);
        let pool = service.connect_pool(connections).map_err(|e| e.to_string())?;
        let mut crawler = Crawler::new(pool, policy.build(), config);
        seed_crawler(&mut crawler, &flags)?;
        run_and_report(crawler, &flags, store.as_ref(), n)?;
        let served = service.shutdown();
        eprintln!(
            "service   : {} completed / {} shed ({:.1}% of offered) / {} cancelled",
            served.completed,
            served.shed,
            served.shed_rate() * 100.0,
            served.cancelled
        );
        eprintln!(
            "latency   : p50 {}us  p95 {}us  p99 {}us  max {}us (queue depth max {})",
            served.p50_latency_us,
            served.p95_latency_us,
            served.p99_latency_us,
            served.max_latency_us,
            served.max_queue_depth
        );
        return Ok(());
    }

    let crawler = if resume_from_store {
        let s = store.as_ref().expect("checked above");
        let (cp, from_backup) = s.load_or_backup().map_err(|e| e.to_string())?;
        if from_backup {
            eprintln!(
                "primary checkpoint {} unreadable; resumed from backup {}",
                s.path().display(),
                s.backup_path().display()
            );
        }
        eprintln!("resuming at {} records / {} rounds", cp.records.len(), cp.rounds);
        if let Some(workers) = workers {
            return resume_pooled(server, policy, cp, config, workers, &flags, n);
        }
        Crawler::resume(&server, policy.build(), &cp, config)
    } else if let Some(resume_path) = flag(&flags, "resume") {
        let blob = std::fs::read_to_string(resume_path)
            .map_err(|e| format!("reading {resume_path}: {e}"))?;
        let cp = Checkpoint::from_text(&blob).map_err(|e| e.to_string())?;
        Crawler::resume(&server, policy.build(), &cp, config)
    } else {
        let mut crawler = Crawler::new(&server, policy.build(), config);
        seed_crawler(&mut crawler, &flags)?;
        crawler
    };

    run_and_report(crawler, &flags, store.as_ref(), n)
}

/// Adds every `--seed-value ATTR=VALUE` to the crawler, requiring at least
/// one.
fn seed_crawler<S: deep_web_crawler::core::DataSource>(
    crawler: &mut Crawler<S>,
    flags: &[(String, String)],
) -> Result<(), String> {
    let mut seeded = false;
    for (name, value) in flags.iter().filter(|(n, _)| n == "seed-value") {
        let (attr, val) = value
            .split_once('=')
            .ok_or_else(|| format!("--{name} wants ATTR=VALUE, got {value:?}"))?;
        if !crawler.add_seed(attr, val) {
            return Err(format!("seed attribute {attr:?} is unknown or not queriable"));
        }
        seeded = true;
    }
    if !seeded {
        return Err("crawl needs at least one --seed-value ATTR=VALUE (or --resume)".into());
    }
    Ok(())
}

/// Runs a constructed crawl to its stop condition and prints the report —
/// generic over the transport, so the in-process and `--connect` paths share
/// the event streaming, checkpointing, and reporting verbatim.
fn run_and_report<S: deep_web_crawler::core::DataSource>(
    mut crawler: Crawler<S>,
    flags: &[(String, String)],
    store: Option<&CheckpointStore>,
    n: usize,
) -> Result<(), String> {
    // Run manually so a checkpoint can be taken at the end regardless of the
    // stop reason.
    if let Some(events_path) = flag(flags, "events") {
        let file = std::fs::File::create(events_path)
            .map_err(|e| format!("creating {events_path}: {e}"))?;
        crawler.add_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(file))));
        eprintln!("streaming events to {events_path}");
    }
    let stop = loop {
        if let Some((reason, why)) = crawler_budget_hit(&crawler) {
            eprintln!("stopping: {why}");
            break reason;
        }
        if crawler.step().is_none() {
            eprintln!("stopping: frontier exhausted");
            break StopReason::FrontierExhausted;
        }
    };
    if let Some(cp_path) = flag(flags, "checkpoint") {
        std::fs::write(cp_path, crawler.checkpoint().to_text())
            .map_err(|e| format!("writing {cp_path}: {e}"))?;
        eprintln!("checkpoint written to {cp_path}");
    }
    if let Some(s) = store {
        // Final snapshot so `dwc resume` after a clean exit is a no-op crawl.
        s.save(&crawler.checkpoint()).map_err(|e| format!("saving checkpoint: {e}"))?;
        eprintln!(
            "{} periodic + 1 final checkpoint in {}",
            crawler.checkpoints_written(),
            s.path().display()
        );
    }
    if flag(flags, "stats").is_some() {
        println!(
            "{}",
            deep_web_crawler::core::report::CrawlSummary::from_state(crawler.state(), 10)
        );
    }
    let report = crawler.into_report(stop);
    if let Some(trace_path) = flag(flags, "trace") {
        std::fs::write(trace_path, report.trace.to_csv())
            .map_err(|e| format!("writing {trace_path}: {e}"))?;
        eprintln!("trace written to {trace_path}");
    }
    println!("records   : {} / {}", report.records, n);
    println!("coverage  : {:.1}%", report.final_coverage.unwrap_or(0.0) * 100.0);
    println!("queries   : {}", report.queries);
    println!("rounds    : {}", report.rounds);
    println!("aborted   : {}", report.aborted_queries);
    Ok(())
}

/// Parses `--connect`, rejecting 0 — a protocol crawl needs at least one
/// connection.
fn parse_connect(flags: &[(String, String)]) -> Result<Option<usize>, String> {
    match flag(flags, "connect") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) | Err(_) => Err("--connect must be a positive connection count".into()),
            Ok(c) => Ok(Some(c)),
        },
    }
}

/// Builds the serving-tier config from `--queue`, `--serve-workers`,
/// `--latency-us N|MIN:MAX`, `--decode-us`, and `--serve-seed`; the caller
/// finishes the builder (so `dwc serve` can attach `--deadline` as the
/// service-side default while `dwc crawl` keeps it on the crawl config).
fn parse_serve_flags(
    flags: &[(String, String)],
) -> Result<deep_web_crawler::core::serve::ServeConfigBuilder, String> {
    use std::time::Duration;
    let mut builder = ServeConfig::builder();
    if let Some(q) = flag(flags, "queue") {
        builder = builder.queue_depth(q.parse().map_err(|_| "bad --queue")?);
    }
    if let Some(w) = flag(flags, "serve-workers") {
        builder = builder.workers(w.parse().map_err(|_| "bad --serve-workers")?);
    }
    if let Some(spec) = flag(flags, "latency-us") {
        let model = match spec.split_once(':') {
            Some((lo, hi)) => LatencyModel::Uniform {
                min: Duration::from_micros(lo.parse().map_err(|_| "bad --latency-us")?),
                max: Duration::from_micros(hi.parse().map_err(|_| "bad --latency-us")?),
            },
            None => LatencyModel::Fixed(Duration::from_micros(
                spec.parse().map_err(|_| "bad --latency-us")?,
            )),
        };
        builder = builder.latency(model);
    }
    if let Some(d) = flag(flags, "decode-us") {
        builder = builder
            .decode_per_record(Duration::from_micros(d.parse().map_err(|_| "bad --decode-us")?));
    }
    if let Some(seed) = flag(flags, "serve-seed") {
        builder = builder.seed(seed.parse().map_err(|_| "bad --serve-seed")?);
    }
    Ok(builder)
}

/// `dwc serve`: closed-loop load generator against the serving tier — N
/// client connections hammer the service with the given queries, then the
/// run reports throughput, shed rate, and tail latency. Sized so that
/// `--connections` well above `--serve-workers` overloads the queue and the
/// shed rate becomes visible — the backpressure demo in one command.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("serve needs a CSV file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let table = load_csv(&text).map_err(|e| e.to_string())?;
    let page_size: usize =
        flag(&flags, "page-size").unwrap_or("10").parse().map_err(|_| "bad --page-size")?;
    let interface = InterfaceSpec::permissive(table.schema(), page_size);

    let queries: Vec<Query> = flags
        .iter()
        .filter(|(name, _)| name == "seed-value")
        .map(|(_, value)| {
            value
                .split_once('=')
                .map(|(a, v)| Query::ByString { attr: a.to_string(), value: v.to_string() })
                .ok_or_else(|| format!("--seed-value wants ATTR=VALUE, got {value:?}"))
        })
        .collect::<Result<_, _>>()?;
    if queries.is_empty() {
        return Err("serve needs at least one --seed-value ATTR=VALUE to query".into());
    }
    let connections: usize = match flag(&flags, "connections").unwrap_or("4").parse() {
        Ok(0) | Err(_) => return Err("--connections must be a positive count".into()),
        Ok(c) => c,
    };
    let requests: usize =
        flag(&flags, "requests").unwrap_or("200").parse().map_err(|_| "bad --requests")?;
    let mut serve_builder = parse_serve_flags(&flags)?;
    if let Some(ms) = flag(&flags, "deadline") {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline")?;
        serve_builder = serve_builder.default_deadline(Duration::from_millis(ms));
    }
    let config = serve_builder.build().map_err(|e| e.to_string())?;

    let server = Arc::new(WebDbServer::new(table, interface));
    let service = SourceService::start(server, config);
    let start = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            let conn = service.connect();
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut failed = 0u64;
                for i in 0..requests {
                    let q = &queries[(c + i) % queries.len()];
                    match conn.respond(&SourceRequest::new(q, 0, ProberMode::Wire), &mut |_| {}) {
                        Ok(_) | Err(CrawlError::Rejected) | Err(CrawlError::Cancelled) => {}
                        Err(_) => failed += 1,
                    }
                }
                failed
            })
        })
        .collect();
    let mut failed = 0u64;
    for handle in handles {
        failed += handle.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let report = service.shutdown();
    println!(
        "offered    : {} ({} connections x {} requests)",
        report.offered(),
        connections,
        requests
    );
    println!("completed  : {} ({:.0} req/s)", report.completed, report.completed as f64 / elapsed);
    println!("shed       : {} ({:.1}% of offered)", report.shed, report.shed_rate() * 100.0);
    println!("cancelled  : {}", report.cancelled);
    if failed > 0 {
        println!("failed     : {failed}");
    }
    println!("queue depth: max {} / mean {:.2}", report.max_queue_depth, report.mean_queue_depth);
    println!(
        "latency    : p50 {}us  p95 {}us  p99 {}us  max {}us",
        report.p50_latency_us, report.p95_latency_us, report.p99_latency_us, report.max_latency_us
    );
    Ok(())
}

/// One chaos crawl: the table behind a [`SourceService`], a seeded lossy
/// wire on every pooled connection, and the crawl driven through it.
struct ChaosOutcome {
    report: CrawlReport,
    service: ServiceReport,
    replayed: ServiceReport,
    inner_rounds: u64,
    pool_rounds: u64,
    frames: u64,
    tally: ChaosTally,
}

fn chaos_crawl(
    table: &UniversalTableHandle,
    plan: &ChaosPlan,
    opts: &ChaosOptions,
) -> Result<ChaosOutcome, String> {
    use std::sync::Arc;
    let interface = InterfaceSpec::permissive(table.schema(), opts.page_size);
    let inner = Arc::new(WebDbServer::new(table.clone(), interface));
    let serve_config = ServeConfig::builder()
        .queue_depth(opts.queue_depth)
        .workers(opts.serve_workers)
        .build()
        .map_err(|e| e.to_string())?;
    let service = SourceService::start(Arc::clone(&inner), serve_config);
    let sink = MemorySink::new();
    service.add_sink(Box::new(sink.clone()));
    let chaos = Arc::new(ChaosState::new(plan.clone()));
    let mut pool = service
        .connect_pool(opts.connections)
        .map_err(|e| e.to_string())?
        .with_chaos(Arc::clone(&chaos));
    if let Some(threshold) = opts.hedge {
        pool = pool.with_hedging(threshold);
    }
    let mut crawler = Crawler::new(&pool, opts.policy.build(), opts.crawl.clone());
    for (attr, value) in &opts.seeds {
        if !crawler.add_seed(attr, value) {
            return Err(format!("seed attribute {attr:?} is unknown or not queriable"));
        }
    }
    let report = crawler.run();
    // Chaos duplicates and losing hedges may still be draining; wait until
    // every admitted request is accounted for before reading the bill.
    loop {
        let r = service.service_report();
        if r.enqueued == r.completed + r.cancelled {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let pool_rounds = pool.rounds_used();
    drop(pool);
    let service_report = service.shutdown();
    Ok(ChaosOutcome {
        report,
        service: service_report,
        replayed: deep_web_crawler::core::replay_service_report(&sink.collected()),
        inner_rounds: inner.rounds_used(),
        pool_rounds,
        frames: chaos.frames_sent(),
        tally: chaos.tally(),
    })
}

/// The table type `load_csv` yields, aliased so `chaos_crawl` can clone it
/// per run.
type UniversalTableHandle = deep_web_crawler::model::UniversalTable;

struct ChaosOptions {
    seeds: Vec<(String, String)>,
    policy: PolicyKind,
    crawl: CrawlConfig,
    page_size: usize,
    connections: usize,
    serve_workers: usize,
    queue_depth: usize,
    hedge: Option<std::time::Duration>,
}

/// Returns the first violated chaos invariant for `plan`, or `None`.
fn chaos_violation(
    table: &UniversalTableHandle,
    plan: &ChaosPlan,
    opts: &ChaosOptions,
    baseline: &CrawlReport,
) -> Result<Option<String>, String> {
    let run = chaos_crawl(table, plan, opts)?;
    if run.replayed != run.service {
        return Ok(Some("replay parity broken: live report != replayed report".into()));
    }
    let billed =
        run.inner_rounds + run.service.shed + run.service.cancelled + run.service.retransmitted;
    if run.pool_rounds != billed {
        return Ok(Some(format!(
            "billing conservation broken: rounds_used {} != executed {} + shed {} + cancelled \
             {} + retransmitted {}",
            run.pool_rounds,
            run.inner_rounds,
            run.service.shed,
            run.service.cancelled,
            run.service.retransmitted
        )));
    }
    let halts = plan.iter().any(|(_, k)| k == ChaosKind::Halt);
    if halts {
        if run.report.records > baseline.records {
            return Ok(Some(format!(
                "halted crawl harvested {} records, baseline only {}",
                run.report.records, baseline.records
            )));
        }
    } else if run.report != *baseline {
        return Ok(Some(format!(
            "crawl report diverged from the fault-free baseline: {} records / {} rounds vs {} / {}",
            run.report.records, run.report.rounds, baseline.records, baseline.rounds
        )));
    }
    Ok(None)
}

/// `dwc chaos`: a crawl through the serving tier behind a deterministic
/// lossy wire, with the chaos invariants checked against a fault-free
/// baseline and ddmin shrinking on violation.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    use std::time::Duration;
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("chaos needs a CSV file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let table = load_csv(&text).map_err(|e| e.to_string())?;
    let n = table.num_records();

    let policy = parse_policy(flag(&flags, "policy").unwrap_or("gl"))?;
    let page_size: usize =
        flag(&flags, "page-size").unwrap_or("10").parse().map_err(|_| "bad --page-size")?;
    let mut builder = CrawlConfig::builder().known_target_size(n).prober(ProberMode::Wire);
    if let Some(b) = flag(&flags, "budget") {
        builder = builder.max_rounds(b.parse().map_err(|_| "bad --budget")?);
    }
    let crawl = builder.build().map_err(|e| e.to_string())?;

    let seeds: Vec<(String, String)> = flags
        .iter()
        .filter(|(name, _)| name == "seed-value")
        .map(|(_, value)| {
            value
                .split_once('=')
                .map(|(a, v)| (a.to_string(), v.to_string()))
                .ok_or_else(|| format!("--seed-value wants ATTR=VALUE, got {value:?}"))
        })
        .collect::<Result<_, _>>()?;
    if seeds.is_empty() {
        return Err("chaos needs at least one --seed-value ATTR=VALUE".into());
    }

    let opts = ChaosOptions {
        seeds,
        policy,
        crawl,
        page_size,
        connections: parse_connect(&flags)?.unwrap_or(1),
        serve_workers: flag(&flags, "serve-workers")
            .unwrap_or("1")
            .parse()
            .map_err(|_| "bad --serve-workers")?,
        queue_depth: flag(&flags, "queue").unwrap_or("32").parse().map_err(|_| "bad --queue")?,
        hedge: flag(&flags, "hedge-us")
            .map(|v| v.parse::<u64>().map_err(|_| "bad --hedge-us"))
            .transpose()?
            .map(Duration::from_micros),
    };

    let (plan, origin) = match flag(&flags, "chaos-plan") {
        Some(spec) => (ChaosPlan::from_spec(spec).map_err(|e| e.to_string())?, "explicit plan"),
        None => {
            let seed: u64 = flag(&flags, "chaos-seed")
                .unwrap_or("1")
                .parse()
                .map_err(|_| "bad --chaos-seed")?;
            let rate: f64 = flag(&flags, "chaos-rate")
                .unwrap_or("0.1")
                .parse()
                .map_err(|_| "bad --chaos-rate")?;
            let horizon: u64 = flag(&flags, "chaos-horizon")
                .unwrap_or("256")
                .parse()
                .map_err(|_| "bad --chaos-horizon")?;
            let kinds: Vec<ChaosKind> = match flag(&flags, "chaos-kind") {
                None => ChaosKind::ALL.to_vec(),
                Some(tokens) => tokens
                    .split(',')
                    .map(|t| {
                        ChaosKind::parse(t.trim())
                            .ok_or_else(|| format!("unknown chaos kind {t:?}"))
                    })
                    .collect::<Result<_, _>>()?,
            };
            (ChaosPlan::seeded(seed, horizon, rate, &kinds), "seeded plan")
        }
    };

    // Fault-free baseline, same crawl, in process.
    let baseline = {
        let interface = InterfaceSpec::permissive(table.schema(), opts.page_size);
        let server = WebDbServer::new(table.clone(), interface);
        let mut crawler = Crawler::new(&server, opts.policy.build(), opts.crawl.clone());
        for (attr, value) in &opts.seeds {
            if !crawler.add_seed(attr, value) {
                return Err(format!("seed attribute {attr:?} is unknown or not queriable"));
            }
        }
        crawler.run()
    };

    let run = chaos_crawl(&table, &plan, &opts)?;
    eprintln!("chaos      : {origin}, {} fault(s) over {} wire frames", plan.len(), run.frames);
    eprintln!(
        "injected   : {} dropped / {} dup / {} corrupt / {} stalled / {} reordered / {} \
         disconnects / {} crashes{}",
        run.tally.dropped,
        run.tally.duplicated,
        run.tally.corrupted,
        run.tally.stalled,
        run.tally.reordered,
        run.tally.disconnects,
        run.tally.crashes,
        if run.tally.halted { " / HALTED" } else { "" }
    );
    println!("records    : {} / {} (baseline {})", run.report.records, n, baseline.records);
    println!("rounds     : crawl {} / billed {}", run.report.rounds, run.pool_rounds);
    println!(
        "service    : {} completed / {} retransmitted / {} shed / {} cancelled / {} restarts / \
         {} hedged",
        run.service.completed,
        run.service.retransmitted,
        run.service.shed,
        run.service.cancelled,
        run.service.restarts,
        run.service.hedged
    );

    match chaos_violation(&table, &plan, &opts, &baseline)? {
        None => {
            println!("invariants : absorption, conservation, replay parity — all hold");
            Ok(())
        }
        Some(why) => {
            eprintln!("invariant violated: {why}");
            eprintln!("shrinking the schedule (ddmin)...");
            let shrunk = shrink_plan(&plan, |p| {
                matches!(chaos_violation(&table, p, &opts, &baseline), Ok(Some(_)))
            });
            Err(format!(
                "{why}\nshrunk to {} fault(s); reproduce with:\n  dwc chaos {} --chaos-plan \
                 \"{}\"",
                shrunk.len(),
                path,
                shrunk.to_spec()
            ))
        }
    }
}

/// Routes a resumed crawl through a one-job pooled fleet (`--workers N`):
/// the checkpoint re-enters via `FleetJob::resume`, and the round budget is
/// enforced by the fleet coordinator instead of the manual loop — the
/// checkpointed rounds count against it, matching the manual loop's
/// cumulative accounting.
fn resume_pooled(
    server: WebDbServer,
    policy: PolicyKind,
    cp: Checkpoint,
    mut config: CrawlConfig,
    workers: usize,
    flags: &[(String, String)],
    n: usize,
) -> Result<(), String> {
    if flag(flags, "stats").is_some() || flag(flags, "events").is_some() {
        return Err("--stats/--events are not supported together with --workers".into());
    }
    let mut fleet = FleetConfig::builder()
        .workers(workers)
        .total_rounds(config.max_rounds.take().unwrap_or(u64::MAX));
    if let Some(allocation) = parse_allocation(flags)? {
        fleet = fleet.allocation(allocation);
    }
    let fleet = fleet.build().map_err(|e| e.to_string())?;
    let report = run_fleet(
        vec![FleetJob {
            source: server,
            policy,
            seeds: Vec::new(),
            config,
            resume: Some(cp),
            tenant: None,
        }],
        fleet,
    );
    let r = &report.sources[0];
    if let Some(trace_path) = flag(flags, "trace") {
        std::fs::write(trace_path, r.trace.to_csv())
            .map_err(|e| format!("writing {trace_path}: {e}"))?;
        eprintln!("trace written to {trace_path}");
    }
    eprintln!(
        "scheduler: {} workers, {} slices, {} rounds executed",
        report.scheduler.workers,
        report.scheduler.slices_completed,
        report.scheduler.rounds_executed
    );
    println!("records   : {} / {}", r.records, n);
    println!("coverage  : {:.1}%", r.final_coverage.unwrap_or(0.0) * 100.0);
    println!("queries   : {}", r.queries);
    println!("rounds    : {}", r.rounds);
    println!("aborted   : {}", r.aborted_queries);
    Ok(())
}

/// Parses `--allocation even|harvest|weighted-fair`; anything else is
/// rejected at parse time.
fn parse_allocation(flags: &[(String, String)]) -> Result<Option<AllocationStrategy>, String> {
    match flag(flags, "allocation") {
        None => Ok(None),
        Some("even") => Ok(Some(AllocationStrategy::Even)),
        Some("harvest") => Ok(Some(AllocationStrategy::HarvestProportional)),
        Some("weighted-fair") => Ok(Some(AllocationStrategy::WeightedFair)),
        Some(other) => Err(format!("unknown allocation {other:?} (even|harvest|weighted-fair)")),
    }
}

/// Parses a `--tenants SPEC`: comma-separated `WEIGHT[:QUOTA[:PRIORITY]]`
/// entries, assigned tenant ids 0..n in order. Fleet jobs are mapped onto
/// the registry round-robin (job i → tenant i mod n).
fn parse_tenants(spec: &str) -> Result<Vec<Tenant>, String> {
    spec.split(',')
        .enumerate()
        .map(|(id, entry)| {
            let mut parts = entry.split(':');
            let weight: u32 = parts
                .next()
                .unwrap_or("")
                .parse()
                .map_err(|_| format!("bad tenant weight in {entry:?}"))?;
            let mut tenant = Tenant::new(id as u32).with_weight(weight);
            if let Some(quota) = parts.next() {
                tenant = tenant.with_quota(
                    quota.parse().map_err(|_| format!("bad tenant quota in {entry:?}"))?,
                );
            }
            if let Some(priority) = parts.next() {
                tenant = tenant.with_priority(
                    priority.parse().map_err(|_| format!("bad tenant priority in {entry:?}"))?,
                );
            }
            if parts.next().is_some() {
                return Err(format!(
                    "tenant entry {entry:?} has too many fields (WEIGHT[:QUOTA[:PRIORITY]])"
                ));
            }
            Ok(tenant)
        })
        .collect()
}

/// `dwc fleet`: one crawl job per `--seed-value`, all against a shared
/// in-process server, multiplexed onto the bounded work-stealing pool.
fn cmd_fleet(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("fleet needs a CSV file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let table = load_csv(&text).map_err(|e| e.to_string())?;
    let n = table.num_records();
    let policy = parse_policy(flag(&flags, "policy").unwrap_or("gl"))?;
    let page_size: usize =
        flag(&flags, "page-size").unwrap_or("10").parse().map_err(|_| "bad --page-size")?;
    let interface = InterfaceSpec::permissive(table.schema(), page_size);

    let seeds: Vec<(String, String)> = flags
        .iter()
        .filter(|(name, _)| name == "seed-value")
        .map(|(_, value)| {
            value
                .split_once('=')
                .map(|(a, v)| (a.to_string(), v.to_string()))
                .ok_or_else(|| format!("--seed-value wants ATTR=VALUE, got {value:?}"))
        })
        .collect::<Result<_, _>>()?;
    if seeds.is_empty() {
        return Err("fleet needs at least one --seed-value ATTR=VALUE (one job per seed)".into());
    }

    let mut fleet = FleetConfig::builder();
    if let Some(w) = parse_workers(&flags)? {
        fleet = fleet.workers(w);
    }
    if let Some(b) = flag(&flags, "budget") {
        fleet = fleet.total_rounds(b.parse().map_err(|_| "bad --budget")?);
    }
    if let Some(s) = flag(&flags, "slice") {
        fleet = fleet.slice(s.parse().map_err(|_| "bad --slice")?);
    }
    if let Some(allocation) = parse_allocation(&flags)? {
        fleet = fleet.allocation(allocation);
    }
    let tenants = match flag(&flags, "tenants") {
        Some(spec) => parse_tenants(spec)?,
        None => Vec::new(),
    };
    if !tenants.is_empty() {
        fleet = fleet.tenants(tenants.clone());
    }
    let fleet = fleet.build().map_err(|e| e.to_string())?;

    let mem_budget = parse_mem_budget(&flags)?;
    let shared = Arc::new(build_server(table, interface, mem_budget)?);
    let mut config = CrawlConfig::builder().known_target_size(n);
    if let Some(mb) = mem_budget {
        config = config.mem_budget_mb(mb);
    }
    let config = config.build().map_err(|e| e.to_string())?;
    let jobs: Vec<FleetJob<Arc<WebDbServer>>> = seeds
        .into_iter()
        .enumerate()
        .map(|(i, seed)| FleetJob {
            source: Arc::clone(&shared),
            policy: policy.clone(),
            seeds: vec![seed],
            config: config.clone(),
            resume: None,
            tenant: (!tenants.is_empty()).then(|| tenants[i % tenants.len()].id),
        })
        .collect();
    eprintln!("fleet: {} jobs on {} pool workers", jobs.len(), fleet.resolved_workers(jobs.len()));
    let report = run_fleet(jobs, fleet);
    print!("{report}");
    Ok(())
}

/// Mirrors the crawler's internal budget checks for the manual loop,
/// returning the stop verdict alongside the human-readable reason.
fn crawler_budget_hit<S: deep_web_crawler::core::DataSource>(
    crawler: &Crawler<S>,
) -> Option<(StopReason, String)> {
    if let Some(cov) = crawler.state().coverage() {
        if let Some(target) = crawler.target_coverage() {
            if cov >= target {
                return Some((
                    StopReason::CoverageReached,
                    format!("coverage target {target} reached"),
                ));
            }
        }
    }
    if let Some(max) = crawler.max_rounds() {
        if crawler.elapsed_rounds() >= max {
            return Some((StopReason::RoundBudget, format!("round budget {max} exhausted")));
        }
    }
    None
}
