//! Offline stub of `criterion` 0.5 (see `vendor/README.md`).
//!
//! Runs each benchmark closure for a small, fixed number of timed
//! iterations and prints the mean wall-clock time per iteration. No
//! statistics, no warm-up model, no HTML reports — just enough to keep
//! `cargo bench` compiling and producing comparable numbers offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver (stub of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

/// Timed iterations per benchmark in `--quick` mode (mirrors real
/// criterion's reduced-measurement flag; CI's bench gate relies on it).
const QUICK_SAMPLE_SIZE: usize = 10;

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50, quick: std::env::args().any(|a| a == "--quick") }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.effective_sample_size(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            quick: self.quick,
            _parent: self,
        }
    }

    fn effective_sample_size(&self) -> usize {
        if self.quick {
            self.sample_size.min(QUICK_SAMPLE_SIZE)
        } else {
            self.sample_size
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.effective_sample_size(), &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.effective_sample_size(), &mut |b| {
            f(b, input)
        });
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.quick {
            self.sample_size.min(QUICK_SAMPLE_SIZE)
        } else {
            self.sample_size
        }
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    total_nanos: u128,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to touch caches and lazy statics.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { iters: sample_size, total_nanos: 0 };
    f(&mut b);
    let mean = b.total_nanos as f64 / b.iters.max(1) as f64;
    println!("bench {name:<40} {:>12.1} ns/iter ({} iters)", mean, b.iters);
}

/// Declares a group of benchmark functions (stub of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point (stub of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0usize;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "timed + warm-up iterations must run");
    }

    #[test]
    fn quick_mode_caps_sample_size() {
        let mut c = Criterion { sample_size: 50, quick: true };
        assert_eq!(c.effective_sample_size(), QUICK_SAMPLE_SIZE);
        let g = c.benchmark_group("g");
        assert_eq!(g.effective_sample_size(), QUICK_SAMPLE_SIZE);
        let c = Criterion { sample_size: 50, quick: false };
        assert_eq!(c.effective_sample_size(), 50);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(42), &5u64, |b, &x| {
            b.iter(|| seen += x)
        });
        g.finish();
        assert!(seen > 0);
    }
}
