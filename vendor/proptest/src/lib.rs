//! Offline stub of `proptest` 1 (see `vendor/README.md`).
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace uses, generating inputs from a deterministic per-test
//! seed. **No shrinking**: a failing case panics immediately with the test
//! name and case number, which — because generation is deterministic — is
//! enough to reproduce it.

use std::marker::PhantomData;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a test case ends when it does not simply succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts.
    Fail(String),
    /// The inputs were rejected (`prop_assume!`); another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (stub of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (stub of the real crate's
    /// `Strategy::prop_map`; no shrinking, so it is a plain functor map).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Characters used for `'.'` in string patterns and for `any::<String>()`:
/// a deliberate mix of plain ASCII, CSV/XML metacharacters and multi-byte
/// code points to stress parsers and serializers.
const CHAR_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '_', '-', '.', ',', ';', ':',
    '"', '\'', '\\', '/', '<', '>', '&', '=', '|', '{', '}', '#', '%', 'é', 'ß', '漢', '☃',
];

/// String pattern strategy: supports the `X{min,max}` shape with `X == '.'`
/// (regex "any char except newline"), the only pattern form this workspace
/// uses. Anything else panics loudly rather than silently generating the
/// wrong distribution.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let pattern = *self;
        let (min, max) = parse_dot_repeat(pattern)
            .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?} (stub supports \".{{min,max}}\")"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| CHAR_POOL[rng.below(CHAR_POOL.len() as u64) as usize]).collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 / 0)
    (S0 / 0, S1 / 1)
    (S0 / 0, S1 / 1, S2 / 2)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3)
}

/// Strategy combinators that need named types.
pub mod strategy {
    pub use super::Just;
    use super::{Strategy, TestRng};

    /// Uniform choice among boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_inclusive - self.min + 1) as u64) as usize
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_inclusive: n }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`. Sizes are best-effort: duplicates
    /// are retried a bounded number of times, so very tight domains may
    /// yield smaller sets than requested.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.draw(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < want && tries < want * 10 + 16 {
                out.insert(self.element.new_value(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`: `None` in one case out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide magnitude spread.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        mag.exp2() * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

impl Arbitrary for String {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Metacharacter-heavy strings, including newlines and tabs, to
        // stress serialization round-trips.
        const EXTRA: &[char] = &['\n', '\t', '\r', '\u{0}', '\u{7f}'];
        let len = rng.below(13) as usize;
        (0..len)
            .map(|_| {
                if rng.below(8) == 0 {
                    EXTRA[rng.below(EXTRA.len() as u64) as usize]
                } else {
                    CHAR_POOL[rng.below(CHAR_POOL.len() as u64) as usize]
                }
            })
            .collect()
    }
}

/// The canonical strategy for `A` (see [`Arbitrary`]).
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Namespace mirror of the real crate's `prop` prelude module.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Drives one property test: repeatedly draws inputs and runs `case` until
/// `config.cases` cases pass, a case fails, or too many are rejected.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_no = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::seed(seed ^ case_no.wrapping_mul(0x2545_F491_4F6C_DD1D));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(10).max(64),
                    "proptest {name}: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case #{case_no} failed: {msg}")
            }
        }
        case_no += 1;
    }
}

/// Everything a property-test module needs, in one import.
pub mod prelude {
    pub use crate::strategy::{Just, Union};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests (stub of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                $cfg,
                stringify!($name),
                |rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::new_value(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Rejects the current case, drawing a fresh one instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($arm) as _),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..200 {
            let v = (3u16..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let xs = prop::collection::vec(0u8..4, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn pattern_strings_respect_length() {
        let mut rng = TestRng::seed(2);
        for _ in 0..100 {
            let s = ".{0,12}".new_value(&mut rng);
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn oneof_draws_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::seed(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..50, ys in prop::collection::vec(0u32..10, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len(), ys.iter().count());
        }
    }
}
