//! Offline stub of `rand` 0.8 (see `vendor/README.md`).
//!
//! Implements the slice of the rand API this workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng` — on top of a deterministic SplitMix64 generator. Not a
//! cryptographic or statistically rigorous RNG; good enough for synthetic
//! data generation and seeded tests.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their full domain (`rng.gen()`).
pub trait Rand: Sized {
    /// Draws one value from `rng`.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Rand for u64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Rand for u32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Rand for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Rand for f64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for f32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::rand(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Rand>(&mut self) -> T {
        T::rand(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::rand(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
