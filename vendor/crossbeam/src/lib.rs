//! Offline stub of `crossbeam` 0.8 (see `vendor/README.md`).
//!
//! Provides `queue::SegQueue` (mutex-backed, not lock-free — correctness
//! over throughput), `thread::scope` built on `std::thread::scope`,
//! `deque::{Injector, Worker, Stealer, Steal}` mirroring
//! `crossbeam-deque`'s work-stealing API (mutex-backed equivalents of the
//! Chase–Lev deques; same ownership/stealing semantics, no lock-freedom),
//! and `channel::bounded` mirroring `crossbeam-channel`'s bounded MPMC
//! channel (mutex + condvar, cloneable `Sender`/`Receiver`, non-blocking
//! `try_send`, disconnect detection).

/// Work-stealing deques: a global [`deque::Injector`] FIFO plus per-worker
/// [`deque::Worker`] deques with [`deque::Stealer`] handles, API-compatible
/// with `crossbeam-deque` 0.8 for the operations the crawler's fleet
/// scheduler uses.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt (mirrors `crossbeam_deque::Steal`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Nothing to steal right now.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried. The mutex-backed
        /// stub never loses races, but callers written against the real
        /// crate must still handle it.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the attempt yielded a task.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// Upper bound on tasks moved per injector batch refill (the real crate
    /// uses half the deque capacity capped at 32; half-of-queue capped at 32
    /// keeps refills fair when thousands of slices are queued).
    const MAX_BATCH: usize = 32;

    /// A FIFO queue owned by one worker thread. The owner pushes and pops at
    /// the front; [`Stealer`]s take from the back, so a steal grabs the task
    /// the owner would reach last.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker deque.
        pub fn new_fifo() -> Self {
            Worker { inner: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// A stealer handle onto this deque (clone freely across threads).
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: Arc::clone(&self.inner) }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("worker deque poisoned").push_back(task);
        }

        /// Pops the owner's next task (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("worker deque poisoned").pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("worker deque poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("worker deque poisoned").len()
        }
    }

    /// A handle for stealing tasks from another worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the victim's deque.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("worker deque poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("worker deque poisoned").is_empty()
        }
    }

    /// The global injector queue every worker refills from (mirrors
    /// `crossbeam_deque::Injector`).
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector { inner: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues a task at the back of the global queue.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("injector poisoned").push_back(task);
        }

        /// Steals one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Moves a batch of tasks into `dest` and returns the first of them:
        /// the injector's FIFO prefix lands in the worker's local deque so
        /// siblings can steal the tail while the owner works the head.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.inner.lock().expect("injector poisoned");
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let extra = (q.len() / 2).min(MAX_BATCH);
            if extra > 0 {
                let mut dest_q = dest.inner.lock().expect("worker deque poisoned");
                dest_q.extend(q.drain(..extra));
            }
            Steal::Success(first)
        }

        /// Whether the global queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("injector poisoned").len()
        }
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue. The real crossbeam `SegQueue` is
    /// lock-free; this stub trades throughput for simplicity with a mutex.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        /// Appends `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("SegQueue poisoned").push_back(value);
        }

        /// Removes the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it can
        /// spawn further threads), like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing-threads can be spawned; all
    /// threads are joined before `scope` returns. Returns `Err` with the
    /// panic payload if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

/// Bounded MPMC channels, API-compatible with `crossbeam-channel` 0.5 for
/// the operations the serving tier uses: `bounded`, cloneable
/// [`channel::Sender`] / [`channel::Receiver`], non-blocking
/// [`channel::Sender::try_send`] with a [`channel::TrySendError`] taxonomy,
/// blocking [`channel::Receiver::recv`], and queue-length introspection.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// `try_send` failure: the queue is full or every receiver is gone.
    /// Carries the rejected message back, like `crossbeam-channel`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is at capacity.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// `recv` failure: the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// `try_recv` failure: nothing queued right now, or nothing queued and
    /// every sender gone. Mirrors `crossbeam-channel::TryRecvError`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// `recv_timeout` failure: the wait elapsed, or every sender is gone.
    /// Mirrors `crossbeam-channel::RecvTimeoutError`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        capacity: usize,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates a bounded channel with room for `capacity` queued messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { buf: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            capacity,
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// The sending half; clones share the same buffer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues without blocking; fails when the buffer is full or the
        /// receivers are gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.buf.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            state.buf.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").buf.len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    /// The receiving half; clones share the same buffer (each message is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.buf.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// Pops a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            if let Some(value) = state.buf.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks until a message arrives, every sender is gone, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.buf.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, wait) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel poisoned");
                state = guard;
                if wait.timed_out() && state.buf.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").buf.len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().expect("channel poisoned").receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::thread;

    #[test]
    fn queue_is_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let q = SegQueue::new();
        let out = thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    for &v in chunk {
                        q.push(v);
                    }
                });
            }
            7u64
        })
        .unwrap();
        assert_eq!(out, 7);
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, data);
    }

    #[test]
    fn scope_reports_panics() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    mod channel {
        use crate::channel::{bounded, RecvError, TrySendError};

        #[test]
        fn bounded_channel_sheds_at_capacity_and_preserves_fifo() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn try_recv_and_recv_timeout_observe_messages_and_disconnects() {
            use crate::channel::{RecvTimeoutError, TryRecvError};
            use std::time::Duration;
            let (tx, rx) = bounded(2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            tx.try_send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            tx.try_send(8).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(8));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_wakes_on_late_send() {
            use std::time::Duration;
            let (tx, rx) = bounded(1);
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.try_send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }

        #[test]
        fn disconnects_are_observable_from_both_ends() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
            let (tx, rx) = bounded::<u8>(1);
            tx.try_send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9), "queued messages survive sender drop");
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_split_the_stream_without_loss() {
            use std::sync::atomic::{AtomicU64, Ordering};
            let (tx, rx) = bounded(64);
            let sum = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let sum = &sum;
                    s.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                    });
                }
                for v in 0..100u64 {
                    while tx.try_send(v).is_err() {
                        std::thread::yield_now();
                    }
                }
                drop(tx);
                drop(rx);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 100 * 99 / 2);
        }
    }

    mod deque {
        use crate::deque::{Injector, Steal, Worker};

        #[test]
        fn worker_is_fifo_and_stealers_take_the_tail() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.len(), 3);
            assert_eq!(w.pop(), Some(1), "owner pops the oldest task");
            assert_eq!(s.steal(), Steal::Success(3), "stealers take the newest task");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.steal(), Steal::<i32>::Empty);
            assert!(w.is_empty() && s.is_empty());
        }

        #[test]
        fn injector_batch_refill_preserves_fifo_order() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            // Half the remainder (9 / 2 = 4) moved into the local deque.
            assert_eq!(w.len(), 4);
            assert_eq!(inj.len(), 5);
            for expect in 1..5 {
                assert_eq!(w.pop(), Some(expect), "local batch keeps global order");
            }
            assert_eq!(inj.steal(), Steal::Success(5));
        }

        #[test]
        fn empty_injector_reports_empty() {
            let inj: Injector<u8> = Injector::new();
            let w = Worker::new_fifo();
            assert_eq!(inj.steal(), Steal::Empty);
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Empty);
            assert!(inj.is_empty());
        }

        #[test]
        fn concurrent_stealing_loses_nothing() {
            use std::sync::atomic::{AtomicU64, Ordering};
            let inj = Injector::new();
            for i in 0..1000u64 {
                inj.push(i);
            }
            let sum = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let local = Worker::new_fifo();
                        loop {
                            let task = local.pop().or_else(|| match inj.steal_batch_and_pop(&local)
                            {
                                Steal::Success(t) => Some(t),
                                _ => None,
                            });
                            match task {
                                Some(t) => {
                                    sum.fetch_add(t, Ordering::Relaxed);
                                }
                                None => break,
                            }
                        }
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
        }
    }
}
