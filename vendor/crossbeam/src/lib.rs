//! Offline stub of `crossbeam` 0.8 (see `vendor/README.md`).
//!
//! Provides `queue::SegQueue` (mutex-backed, not lock-free — correctness
//! over throughput) and `thread::scope` built on `std::thread::scope`.

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue. The real crossbeam `SegQueue` is
    /// lock-free; this stub trades throughput for simplicity with a mutex.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        /// Appends `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("SegQueue poisoned").push_back(value);
        }

        /// Removes the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it can
        /// spawn further threads), like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing-threads can be spawned; all
    /// threads are joined before `scope` returns. Returns `Err` with the
    /// panic payload if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::thread;

    #[test]
    fn queue_is_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let q = SegQueue::new();
        let out = thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    for &v in chunk {
                        q.push(v);
                    }
                });
            }
            7u64
        })
        .unwrap();
        assert_eq!(out, 7);
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, data);
    }

    #[test]
    fn scope_reports_panics() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
