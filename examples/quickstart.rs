//! Quickstart: crawl the paper's Figure 1 example database.
//!
//! Walks through Example 2.1 of the paper: a five-record relational table,
//! its attribute-value graph, and a crawl that starts from the seed value
//! `(A, "a2")` and uncovers the whole database.
//!
//! Run with: `cargo run --release --example quickstart`

use deep_web_crawler::model::degree::DegreeDistribution;
use deep_web_crawler::model::domset::{
    exact_minimum_dominating_set, greedy_weighted_dominating_set,
};
use deep_web_crawler::model::fixtures::figure1_table;
use deep_web_crawler::prelude::*;

fn main() {
    // ---- The database of Figure 1 -------------------------------------
    let table = figure1_table();
    println!(
        "Figure 1 table: {} records, {} distinct attribute values",
        table.num_records(),
        table.num_distinct_values()
    );

    // ---- Its attribute-value graph (Definition 2.1) -------------------
    let graph = AvGraph::from_table(&table);
    println!(
        "attribute-value graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let dd = DegreeDistribution::of_graph(&graph);
    println!(
        "max degree {} (the hub value c2), mean degree {:.2}",
        dd.max_degree(),
        dd.mean_degree()
    );

    // ---- Optimal query selection = minimum dominating set (Def. 2.4) --
    let exact = exact_minimum_dominating_set(&graph, |_| 1.0).expect("tiny graph");
    let greedy = greedy_weighted_dominating_set(&graph, |_| 1.0);
    println!(
        "minimum dominating set has {} vertices (greedy found {}): issuing those\n\
         values as queries retrieves every record",
        exact.len(),
        greedy.len()
    );

    // ---- Crawl it (Example 2.1) ----------------------------------------
    let interface = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table, interface);
    let config = CrawlConfig::builder().known_target_size(5).build().expect("valid crawl config");
    let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
    crawler.add_seed("A", "a2");
    let report = crawler.run();
    println!(
        "\ncrawl from seed (A, a2): {} records in {} queries / {} communication rounds",
        report.records, report.queries, report.rounds
    );
    for p in report.trace.points() {
        println!("  after query {}: {} records ({} rounds)", p.queries, p.records, p.rounds);
    }
    assert_eq!(report.records, 5, "the Figure 1 database is fully reachable from a2");
    println!("\nfull coverage reached — exactly as Example 2.1 walks it through.");
}
