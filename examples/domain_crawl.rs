//! Domain-knowledge crawling: use an IMDB-like sample to crawl an
//! Amazon-DVD-like target (the paper's Section 4 / Figure 5 setting).
//!
//! A domain statistics table built from a same-domain sample database gives
//! the crawler (a) candidate queries it has never seen in the target and
//! (b) global frequency statistics for harvest-rate estimation.
//!
//! Run with: `cargo run --release --example domain_crawl`

use deep_web_crawler::datagen::paired::subset_by_min_year;
use deep_web_crawler::prelude::*;
use std::sync::Arc;

fn main() {
    // One hidden movie-domain model produces both sources.
    let pair = PairedDataset::generate(PairedSpec { scale: 0.03, overlap: 0.8, seed: 1 });
    let n = pair.target.num_records();
    println!(
        "sample (IMDB-like): {} records   target (Amazon-DVD-like): {} records",
        pair.sample.num_records(),
        n
    );

    // Domain table from the post-1960 subset of the sample.
    let dm = Arc::new(DomainTable::build(subset_by_min_year(&pair.sample, 1960)));
    println!(
        "domain table: {} records, {} candidate attribute values\n",
        dm.num_records(),
        dm.num_values()
    );

    let budget = 300u64;
    for kind in [PolicyKind::GreedyLink, PolicyKind::Domain(Arc::clone(&dm))] {
        let interface = InterfaceSpec::permissive(pair.target.schema(), 10).with_result_cap(100);
        let server = WebDbServer::new(pair.target.clone(), interface);
        let config = CrawlConfig::builder()
            .known_target_size(n)
            .max_rounds(budget)
            .build()
            .expect("valid crawl config");
        let mut crawler = Crawler::new(&server, kind.build(), config);
        crawler.add_seed("Language", "Language_0");
        let report = crawler.run();
        println!(
            "{:<4} after {budget} rounds: {:5} records  (coverage {:.1}%)",
            kind.label(),
            report.records,
            report.final_coverage.unwrap_or(0.0) * 100.0
        );
    }
    println!(
        "\nThe DM crawler leverages the sample's statistics — it knows which unseen\n\
         values are likely hubs — and harvests faster, as in the paper's Figure 5."
    );
}
