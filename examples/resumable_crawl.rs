//! Resumable crawling: checkpoint a half-finished crawl to a text blob,
//! "restart the process", and finish from where it left off — no
//! communication rounds are re-spent.
//!
//! Run with: `cargo run --release --example resumable_crawl`

use deep_web_crawler::prelude::*;

fn server() -> WebDbServer {
    let table = Preset::Acm.table(0.01, 11);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    WebDbServer::new(table, spec)
}

fn main() {
    let n = server().table().num_records();
    let config = CrawlConfig::builder().known_target_size(n).build().expect("valid crawl config");

    // Phase 1: crawl until ~40% coverage, then checkpoint.
    let s1 = server();
    let mut crawler = Crawler::new(&s1, PolicyKind::GreedyLink.build(), config.clone());
    crawler.add_seed("Conference", "Conference_0");
    crawler.add_seed("Author", "Author_5");
    while crawler.state().coverage().unwrap_or(0.0) < 0.4 {
        if crawler.step().is_none() {
            break;
        }
    }
    let blob = crawler.checkpoint().to_text();
    println!(
        "checkpointed at {} records / {} rounds — blob is {} KiB of plain text",
        crawler.state().local.num_records(),
        crawler.rounds(),
        blob.len() / 1024
    );
    drop(crawler);
    drop(s1);

    // Phase 2: a "new process" parses the blob and resumes with a fresh
    // server connection and a fresh policy instance.
    let checkpoint = Checkpoint::from_text(&blob).expect("valid checkpoint");
    let s2 = server();
    let resumed = Crawler::resume(&s2, PolicyKind::GreedyLink.build(), &checkpoint, config);
    let report = resumed.run();
    println!(
        "resumed run finished: {} records ({:.1}% coverage) in {} total rounds",
        report.records,
        report.final_coverage.unwrap_or(0.0) * 100.0,
        report.rounds
    );
    assert!(report.final_coverage.unwrap_or(0.0) > 0.99);
    println!("\nthe checkpoint carried the vocabulary, frontier, L_queried and DB_local;\npolicy heaps were rebuilt deterministically on resume.");
}
