//! Crash-safe fleet supervision: a worker is killed mid-crawl by an
//! injected panic, the supervisor restarts it from its last on-disk
//! checkpoint, and a second job rides out a fault burst behind its
//! per-source circuit breaker — no records are lost either way.
//!
//! Run with: `cargo run --release --example fault_tolerant_fleet`

use deep_web_crawler::core::fleet::{run_fleet_supervised, FleetConfig, FleetJob};
use deep_web_crawler::prelude::*;
use std::sync::Arc;

fn server(seed: u64) -> Arc<WebDbServer> {
    let table = Preset::Acm.table(0.005, seed);
    let spec = InterfaceSpec::permissive(table.schema(), 10).with_result_cap(40);
    Arc::new(WebDbServer::new(table, spec))
}

fn job(
    seed: u64,
    plan: FaultPlan,
    store: Option<CheckpointStore>,
) -> FleetJob<FaultPlanSource<Arc<WebDbServer>>> {
    let mut builder = CrawlConfig::builder().max_requeues(20);
    if let Some(store) = store {
        // Snapshot after every completed query: a killed worker redoes at
        // most the one query that was in flight.
        builder = builder.checkpoint_store(store).checkpoint_every(1);
    }
    FleetJob {
        source: FaultPlanSource::new(server(seed), plan),
        policy: PolicyKind::GreedyLink,
        seeds: vec![("Conference".into(), "Conference_0".into())],
        config: builder.build().expect("valid crawl config"),
        resume: None,
        tenant: None,
    }
}

fn main() {
    // The injected worker-killing panic is expected and caught by the
    // supervisor; keep its default backtrace off the example's output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let dir = std::env::temp_dir().join(format!("dwc-example-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = CheckpointStore::new(dir.join("job0.ckpt"));

    // Job 0 panics at its 25th page request (a worker crash); job 1 sees a
    // 50-request transient burst (a source brown-out).
    let jobs = vec![
        job(11, FaultPlan::new().panic_at(25), Some(store.clone())),
        job(13, FaultPlan::new().burst(10, 50), None),
    ];
    let config = FleetConfig::builder()
        .total_rounds(20_000)
        .slice(8)
        .default_retry(RetryPolicy::retries(4))
        .max_restarts(3)
        .breaker(BreakerConfig { trip_after: 3, cooldown: 2 })
        .build()
        .expect("valid fleet config");
    let report = run_fleet_supervised(jobs, config);
    print!("{report}");

    // The same two crawls without any faults, for comparison.
    let clean = run_fleet_supervised(
        vec![job(11, FaultPlan::new(), None), job(13, FaultPlan::new(), None)],
        FleetConfig::builder().total_rounds(20_000).slice(8).build().expect("valid fleet config"),
    );
    for (i, (faulted, baseline)) in report.sources.iter().zip(&clean.sources).enumerate() {
        assert_eq!(
            faulted.records, baseline.records,
            "job {i} must harvest exactly the fault-free record set"
        );
    }
    println!(
        "\nsupervision: {} worker restart(s), {} breaker trip(s), {} recover(ies)",
        report.worker_restarts(),
        report.breaker_trips(),
        report.breaker_recoveries()
    );
    println!(
        "both jobs harvested their full fault-free record sets; job 0 resumed from {}",
        store.path().display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
