//! Compare query-selection policies on a generated auction source.
//!
//! Generates an eBay-like structured web database, then crawls it with each
//! of the paper's policies and prints the communication rounds each needed to
//! reach 50% and 90% coverage — a miniature of the paper's Figure 3.
//!
//! Run with: `cargo run --release --example compare_policies`

use deep_web_crawler::prelude::*;

fn main() {
    let table = Preset::Ebay.table(0.05, 42);
    let n = table.num_records();
    println!(
        "target: eBay-like auction source ({} records, {} distinct values)\n",
        n,
        table.num_distinct_values()
    );

    let policies = [
        PolicyKind::Bfs,
        PolicyKind::Dfs,
        PolicyKind::Random(7),
        PolicyKind::GreedyLink,
        PolicyKind::Mmmi(MmmiConfig::default()),
    ];
    println!(
        "{:<10}  {:>12}  {:>12}  {:>8}  {:>8}",
        "policy", "rounds@50%", "rounds@90%", "queries", "records"
    );
    for kind in policies {
        let interface = InterfaceSpec::permissive(table.schema(), 10);
        let server = WebDbServer::new(table.clone(), interface);
        let config = CrawlConfig::builder()
            .known_target_size(n)
            .target_coverage(0.9)
            .build()
            .expect("valid crawl config");
        let mut crawler = Crawler::new(&server, kind.build(), config);
        // Same two seed values for every policy.
        crawler.add_seed("Categories", "Categories_0");
        crawler.add_seed("Seller", "Seller_1");
        let report = crawler.run();
        let r50 = report.trace.rounds_to_coverage(0.5, n);
        let r90 = report.trace.rounds_to_coverage(0.9, n);
        println!(
            "{:<10}  {:>12}  {:>12}  {:>8}  {:>8}",
            kind.label(),
            r50.map_or("—".into(), |r| r.to_string()),
            r90.map_or("—".into(), |r| r.to_string()),
            report.queries,
            report.records
        );
    }
    println!("\nGL (greedy link-based) should dominate the naive policies, as in Figure 3.");
}
