//! Full-pipeline crawl over the XML wire format, with fault injection.
//!
//! The crawler here never touches in-process result structures: every page is
//! serialized to the XML wire format (as Amazon's Web Service returned XML to
//! the paper's crawler) and re-parsed by the Result Extractor. The server
//! also injects a transient failure every 7th request; the crawler retries
//! and still harvests everything.
//!
//! Run with: `cargo run --release --example wire_crawl`

use deep_web_crawler::prelude::*;

fn main() {
    let table = Preset::Acm.table(0.005, 3);
    let n = table.num_records();
    println!("ACM-like source: {} records, {} distinct values", n, table.num_distinct_values());

    let interface = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table, interface).with_faults(FaultPolicy::every(7));
    let config = CrawlConfig::builder()
        .known_target_size(n)
        .prober(ProberMode::Wire)
        .max_retries(5)
        .abort(AbortPolicy::standard())
        .build()
        .expect("valid crawl config");
    let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
    crawler.add_seed("Conference", "Conference_0");
    crawler.add_seed("Author", "Author_3");
    let report = crawler.run();

    println!(
        "harvested {} records in {} queries / {} rounds (coverage {:.1}%)",
        report.records,
        report.queries,
        report.rounds,
        report.final_coverage.unwrap_or(0.0) * 100.0
    );
    println!(
        "transient failures retried: {}   queries aborted early: {}",
        report.transient_failures, report.aborted_queries
    );
    assert!(report.transient_failures > 0, "the fault injector must have fired");
    println!("\nevery record crossed the XML wire format and the Result Extractor.");
}
