//! Fleet crawling: harvest several structured sources under one global
//! communication budget (the paper's closing "real world product database
//! crawler" deployment scenario).
//!
//! Compares even budget allocation against harvest-proportional allocation,
//! which shifts rounds toward the sources that are still producing new
//! records.
//!
//! Run with: `cargo run --release --example fleet_crawl`

use deep_web_crawler::core::fleet::{run_fleet, AllocationStrategy, FleetConfig, FleetJob};
use deep_web_crawler::prelude::*;

fn jobs() -> Vec<FleetJob> {
    // Four stores of very different sizes from the same movie domain.
    [0.002, 0.004, 0.01, 0.02]
        .iter()
        .enumerate()
        .map(|(i, &scale)| {
            let table = Preset::Imdb.table(scale, i as u64 + 1);
            let n = table.num_records();
            let spec = InterfaceSpec::permissive(table.schema(), 10);
            FleetJob {
                server: WebDbServer::new(table, spec),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("Language".into(), "Language_0".into())],
                config: CrawlConfig { known_target_size: Some(n), ..Default::default() },
            }
        })
        .collect()
}

fn main() {
    let budget = 2_000;
    for allocation in [AllocationStrategy::Even, AllocationStrategy::HarvestProportional] {
        let report = run_fleet(
            jobs(),
            FleetConfig { total_rounds: budget, slice: 100, allocation },
        );
        println!("{allocation:?} allocation — budget {budget} rounds:");
        for (i, r) in report.sources.iter().enumerate() {
            println!(
                "  source {}: {:5} records ({:5.1}% coverage) in {:4} rounds [{:?}]",
                i + 1,
                r.records,
                r.final_coverage.unwrap_or(0.0) * 100.0,
                r.rounds,
                r.stop
            );
        }
        println!(
            "  total: {} records in {} rounds\n",
            report.total_records(),
            report.total_rounds
        );
    }
    println!(
        "Harvest-proportional allocation moves budget away from saturated sources,\n\
         which lifts the fleet-wide record total at the same cost."
    );
}
