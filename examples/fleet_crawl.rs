//! Fleet crawling: harvest several structured sources under one global
//! communication budget (the paper's closing "real world product database
//! crawler" deployment scenario).
//!
//! Part 1 compares even budget allocation against harvest-proportional
//! allocation over four distinct stores. Part 2 points two workers at the
//! *same* store through `Arc<WebDbServer>`: the server bills every round to
//! one shared atomic counter, whichever worker asks.
//!
//! Run with: `cargo run --release --example fleet_crawl`

use deep_web_crawler::core::fleet::{run_fleet, AllocationStrategy, FleetConfig, FleetJob};
use deep_web_crawler::prelude::*;
use std::sync::Arc;

fn jobs() -> Vec<FleetJob<WebDbServer>> {
    // Four stores of very different sizes from the same movie domain.
    [0.002, 0.004, 0.01, 0.02]
        .iter()
        .enumerate()
        .map(|(i, &scale)| {
            let table = Preset::Imdb.table(scale, i as u64 + 1);
            let n = table.num_records();
            let spec = InterfaceSpec::permissive(table.schema(), 10);
            FleetJob {
                source: WebDbServer::new(table, spec),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("Language".into(), "Language_0".into())],
                config: CrawlConfig::builder()
                    .known_target_size(n)
                    .build()
                    .expect("valid crawl config"),
                resume: None,
                tenant: None,
            }
        })
        .collect()
}

fn main() {
    let budget = 2_000;
    for allocation in [AllocationStrategy::Even, AllocationStrategy::HarvestProportional] {
        let config = FleetConfig::builder()
            .total_rounds(budget)
            .slice(100)
            .allocation(allocation)
            .build()
            .expect("valid fleet config");
        let report = run_fleet(jobs(), config);
        println!("{allocation:?} allocation — budget {budget} rounds:");
        for (i, r) in report.sources.iter().enumerate() {
            println!(
                "  source {}: {:5} records ({:5.1}% coverage) in {:4} rounds [{:?}]",
                i + 1,
                r.records,
                r.final_coverage.unwrap_or(0.0) * 100.0,
                r.rounds,
                r.stop
            );
        }
        println!("  total: {} records in {} rounds", report.total_records(), report.total_rounds);
        let s = &report.scheduler;
        println!(
            "  scheduler: {} pool workers, {} slices ({} stolen), {} rounds executed\n",
            s.workers, s.slices_completed, s.steals, s.rounds_executed
        );
    }
    println!(
        "Harvest-proportional allocation moves budget away from saturated sources,\n\
         which lifts the fleet-wide record total at the same cost.\n"
    );

    // ---- Two workers, one source ---------------------------------------
    let table = Preset::Imdb.table(0.01, 7);
    let n = table.num_records();
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let shared = Arc::new(WebDbServer::new(table, spec));
    let config = CrawlConfig::builder().known_target_size(n).build().expect("valid crawl config");
    let shared_jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["Language_0", "Language_1"]
        .iter()
        .map(|&seed| FleetJob {
            source: Arc::clone(&shared),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("Language".into(), seed.into())],
            config: config.clone(),
            resume: None,
            tenant: None,
        })
        .collect();
    let fleet_config =
        FleetConfig::builder().total_rounds(budget).slice(100).build().expect("valid fleet config");
    let report = run_fleet(shared_jobs, fleet_config);
    println!("two workers sharing one {n}-record source from different seeds:");
    for (i, r) in report.sources.iter().enumerate() {
        println!("  worker {}: {} records in {} rounds", i + 1, r.records, r.rounds);
    }
    println!(
        "  server's own global round counter: {} (== sum of the workers' {})",
        shared.rounds_used(),
        report.total_rounds
    );
}
