//! Estimate a hidden database's size by overlap analysis (capture–recapture),
//! as the paper does for the Amazon DVD database in Section 5.
//!
//! Several independent short crawls each collect a sample of record keys; the
//! Lincoln–Petersen estimator on every pair of samples yields a family of
//! size estimates; a one-sided Student-t bound turns them into a confidence
//! statement.
//!
//! Run with: `cargo run --release --example size_estimation`

use deep_web_crawler::prelude::*;
use deep_web_crawler::stats;

fn main() {
    let table = Preset::Imdb.table(0.01, 5);
    let true_size = table.num_records();
    let crawls = 6;
    let budget = 120u64;
    println!("hidden target of {true_size} records; {crawls} crawls × {budget} rounds each\n");

    let mut samples: Vec<Vec<u32>> = Vec::new();
    for i in 0..crawls {
        let interface = InterfaceSpec::permissive(table.schema(), 10);
        let server = WebDbServer::new(table.clone(), interface);
        let config = CrawlConfig::builder().max_rounds(budget).build().expect("valid crawl config");
        let mut crawler = Crawler::new(&server, PolicyKind::Random(i).build(), config);
        crawler.add_seed("Language", &format!("Language_{i}"));
        crawler.add_seed("Actor", &format!("Actor_{}", i * 17));
        while crawler.rounds() < budget {
            if crawler.step().is_none() {
                break;
            }
        }
        let mut keys: Vec<u32> = (0..true_size as u32)
            .filter(|&k| crawler.state().local.contains_key(u64::from(k)))
            .collect();
        keys.sort_unstable();
        println!("crawl {} harvested {} records", i + 1, keys.len());
        samples.push(keys);
    }

    let estimates = stats::pairwise_estimates(&samples);
    println!("\n{} pairwise Lincoln–Petersen estimates", estimates.len());
    let mean = stats::mean(&estimates);
    let upper = stats::one_sample_upper_bound(&estimates, 0.90).expect("enough estimates");
    println!("mean estimate     : {mean:.0}");
    println!("90% upper bound   : {upper:.0}");
    println!("true size         : {true_size}");
    println!(
        "\nThe paper used exactly this procedure to conclude the Amazon DVD database\n\
         held fewer than 37,000 records with 90% confidence."
    );
}
