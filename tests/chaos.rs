//! Chaos suite: seeded lossy-wire schedules against the serving tier.
//!
//! Every schedule is a [`ChaosPlan`] — an exact map from wire-frame index to
//! fault — interposed between a crawler and a [`SourceService`]. The matrix
//! sweeps all eight [`ChaosKind`]s across enough seeds for ≥1,000 schedules
//! and checks four invariants on every one:
//!
//! 1. **Absorption** — the crawl report is bit-identical to the fault-free
//!    baseline (exactly-once request ids + client retransmission hide every
//!    recoverable fault below the `DataSource` seam). `Halt` is the one
//!    unrecoverable kind: there the crawl may end early but must never
//!    harvest records the baseline didn't.
//! 2. **Billing conservation** — `rounds_used` equals `executed + shed +
//!    cancelled + retransmitted`, cross-checked between the connection's
//!    atomic counters and the folded event stream.
//! 3. **Replay parity** — the [`ServiceReport`] folded live equals the one
//!    replayed from the recorded event stream.
//! 4. **Determinism** — re-running the same seed reproduces the same crawl
//!    report and the same service counters.
//!
//! A failing schedule is ddmin-shrunk ([`shrink_plan`]) to a 1-minimal fault
//! set, written to `target/chaos/` (CI uploads it as an artifact), and
//! printed as a reproducible `dwc chaos --chaos-plan …` invocation.
//!
//! CI selects one kind per job via `DWC_CHAOS_KIND` and offsets seeds via
//! `DWC_CHAOS_SEED`; unset, the full 8 × 125 matrix runs.

use deep_web_crawler::core::replay_service_report;
use deep_web_crawler::model::fixtures::figure1_table;
use deep_web_crawler::model::{AttrId, AttrSpec, Schema, UniversalTable};
use deep_web_crawler::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Seeds per chaos kind: 8 kinds × 125 = 1,000 schedules when the matrix
/// is not filtered down to one kind.
const SEEDS_PER_KIND: u64 = 125;

fn figure1_server() -> Arc<WebDbServer> {
    let table = figure1_table();
    let spec = InterfaceSpec::permissive(table.schema(), 2);
    Arc::new(WebDbServer::new(table, spec))
}

fn crawl_config() -> CrawlConfig {
    CrawlConfig::builder().max_rounds(400).prober(ProberMode::Wire).build().unwrap()
}

fn run_crawl<S: DataSource>(source: S) -> CrawlReport {
    let mut crawler = Crawler::new(source, PolicyKind::GreedyLink.build(), crawl_config());
    crawler.add_seed("A", "a2");
    crawler.run()
}

/// Everything one chaos crawl produced, for invariant checking.
struct ChaosRun {
    report: CrawlReport,
    service: ServiceReport,
    replayed: ServiceReport,
    inner_rounds: u64,
    conn_rounds: u64,
    tally: ChaosTally,
}

fn run_chaos(plan: &ChaosPlan) -> ChaosRun {
    let inner = figure1_server();
    let service = SourceService::start(Arc::clone(&inner), ServeConfig::default());
    let sink = MemorySink::new();
    service.add_sink(Box::new(sink.clone()));
    let chaos = Arc::new(ChaosState::new(plan.clone()));
    let conn = service.connect().with_chaos(Arc::clone(&chaos));
    let report = run_crawl(conn.clone());
    // Chaos duplicates enqueued alongside the crawl's final request may
    // still be draining when its reply lands; wait until every admitted
    // request is accounted for before reading the billing counters.
    loop {
        let r = service.service_report();
        if r.enqueued == r.completed + r.cancelled {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let conn_rounds = conn.rounds_used();
    drop(conn);
    let service_report = service.shutdown();
    ChaosRun {
        report,
        service: service_report,
        replayed: replay_service_report(&sink.collected()),
        inner_rounds: inner.rounds_used(),
        conn_rounds,
        tally: chaos.tally(),
    }
}

/// The counter half of a [`ServiceReport`] — everything that must be
/// deterministic across same-seed runs (latencies are wall-clock and are
/// not).
fn counters(r: &ServiceReport) -> [u64; 10] {
    [
        r.enqueued,
        r.completed,
        r.shed,
        r.cancelled,
        r.frames_dropped,
        r.retransmitted,
        r.hedged,
        r.restarts,
        r.breaker_trips,
        r.breaker_recoveries,
    ]
}

/// Runs `plan` and returns a description of the first violated invariant,
/// or `None` when all hold. This is also the oracle handed to
/// [`shrink_plan`].
fn violation(plan: &ChaosPlan, baseline: &CrawlReport) -> Option<String> {
    let run = run_chaos(plan);
    if run.replayed != run.service {
        return Some(format!(
            "replay parity broken: live {:?} != replayed {:?}",
            run.service, run.replayed
        ));
    }
    let billed =
        run.inner_rounds + run.service.shed + run.service.cancelled + run.service.retransmitted;
    if run.conn_rounds != billed {
        return Some(format!(
            "billing conservation broken: rounds_used {} != executed {} + shed {} + \
             cancelled {} + retransmitted {}",
            run.conn_rounds,
            run.inner_rounds,
            run.service.shed,
            run.service.cancelled,
            run.service.retransmitted
        ));
    }
    let halts = plan.iter().any(|(_, k)| k == ChaosKind::Halt);
    if halts {
        if run.report.records > baseline.records {
            return Some(format!(
                "halted crawl harvested {} records, more than the baseline's {}",
                run.report.records, baseline.records
            ));
        }
    } else if run.report != *baseline {
        return Some(format!(
            "crawl report diverged from the fault-free baseline under a recoverable plan: \
             {} records / {} rounds / {} queries vs baseline {} / {} / {}",
            run.report.records,
            run.report.rounds,
            run.report.queries,
            baseline.records,
            baseline.rounds,
            baseline.queries
        ));
    }
    None
}

/// Shrinks a failing plan, writes the artifact CI uploads, and panics with
/// a copy-pasteable reproduction.
fn report_failure(kind: ChaosKind, seed: u64, plan: &ChaosPlan, why: &str, baseline: &CrawlReport) {
    let shrunk = shrink_plan(plan, |p| violation(p, baseline).is_some());
    let spec = shrunk.to_spec();
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let artifact = dir.join(format!("shrunk-{kind}-{seed}.txt"));
    let _ = std::fs::write(
        &artifact,
        format!(
            "kind: {kind}\nseed: {seed}\nviolation: {why}\nfull plan: {}\nshrunk plan: {spec}\n\
             repro: dwc chaos --chaos-plan \"{spec}\"\n",
            plan.to_spec()
        ),
    );
    panic!(
        "chaos schedule {kind}/{seed} violated an invariant: {why}\n\
         shrunk to {} fault(s): {spec}\n\
         reproduce with: dwc chaos --chaos-plan \"{spec}\"\n\
         (also written to {})",
        shrunk.len(),
        artifact.display()
    );
}

fn matrix_kinds() -> Vec<ChaosKind> {
    match std::env::var("DWC_CHAOS_KIND") {
        Ok(token) => {
            let kind = ChaosKind::parse(&token)
                .unwrap_or_else(|| panic!("unknown DWC_CHAOS_KIND {token:?}"));
            vec![kind]
        }
        Err(_) => ChaosKind::ALL.to_vec(),
    }
}

fn seed_base() -> u64 {
    std::env::var("DWC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// The tentpole matrix: ≥1,000 seeded schedules (8 kinds × 125 seeds, or
/// 125 for the CI-selected kind), every invariant checked on each, with a
/// determinism double-run on a stride of cells.
#[test]
fn seeded_chaos_matrix_holds_every_invariant() {
    let baseline = run_crawl(&*figure1_server());
    assert!(baseline.records > 0, "the baseline crawl must harvest something");
    let base = seed_base();
    for kind in matrix_kinds() {
        for i in 0..SEEDS_PER_KIND {
            let seed = base + i;
            // Sub-millisecond stall/reorder keeps 1,000 schedules fast while
            // still exercising the delayed-execution paths.
            let plan = ChaosPlan::seeded(seed, 48, 0.2, &[kind])
                .stall_for(Duration::from_micros(200))
                .reorder_for(Duration::from_micros(100));
            if let Some(why) = violation(&plan, &baseline) {
                report_failure(kind, seed, &plan, &why, &baseline);
            }
            if i % 8 == 0 {
                // Determinism: the same seed must reproduce the same crawl
                // report and the same service counters.
                let a = run_chaos(&plan);
                let b = run_chaos(&plan);
                assert_eq!(a.report, b.report, "{kind}/{seed}: crawl report not deterministic");
                assert_eq!(
                    counters(&a.service),
                    counters(&b.service),
                    "{kind}/{seed}: service counters not deterministic"
                );
                assert_eq!(a.tally, b.tally, "{kind}/{seed}: chaos tally not deterministic");
            }
        }
    }
}

/// Mixed-kind schedules (the pool drawn from all eight kinds at once) stress
/// fault interactions the single-kind matrix cannot.
#[test]
fn mixed_kind_schedules_hold_every_invariant() {
    let baseline = run_crawl(&*figure1_server());
    let base = seed_base();
    for i in 0..64 {
        let seed = 10_000 + base + i;
        let plan = ChaosPlan::seeded(seed, 48, 0.25, &ChaosKind::ALL)
            .stall_for(Duration::from_micros(200))
            .reorder_for(Duration::from_micros(100));
        if let Some(why) = violation(&plan, &baseline) {
            report_failure(ChaosKind::Drop, seed, &plan, &why, &baseline);
        }
    }
}

/// The shrinker turned loose on a real failure: a plan that genuinely
/// violates absorption (a halt) shrinks to exactly the halt fault.
#[test]
fn shrinking_a_halting_plan_isolates_the_halt() {
    let baseline = run_crawl(&*figure1_server());
    // Pad a halt with harmless recoverable faults; the crawl ends early, so
    // the report diverges (fewer records) — `violation` flags nothing for
    // halts unless records exceed baseline, so use report divergence
    // directly as the failing predicate here.
    let plan = ChaosPlan::new().stall_at(1).duplicate_at(3).halt_at(5).corrupt_at(7);
    let fails = |p: &ChaosPlan| run_chaos(p).report != baseline;
    assert!(fails(&plan), "a mid-crawl halt must change the crawl report");
    let shrunk = shrink_plan(&plan, fails);
    assert_eq!(shrunk.len(), 1, "only the halt matters: {}", shrunk.to_spec());
    assert_eq!(shrunk.kind_at(5), Some(ChaosKind::Halt));
}

// ---------------------------------------------------------------------------
// Crash-at-every-frame recovery (satellite: checkpoint-resume parity)
// ---------------------------------------------------------------------------

/// Runs the protocol crawl stepping with a checkpoint before every step,
/// killing the service at wire frame `halt_at`. If the kill landed
/// mid-crawl, resumes from the last pre-kill checkpoint against a fresh
/// in-process source and returns that report; otherwise returns the
/// completed report.
fn crawl_killed_at(server: Arc<WebDbServer>, halt_at: u64) -> CrawlReport {
    let service = SourceService::start(Arc::clone(&server), ServeConfig::default());
    let chaos = Arc::new(ChaosState::new(ChaosPlan::new().halt_at(halt_at)));
    let conn = service.connect().with_chaos(Arc::clone(&chaos));
    let mut crawler = Crawler::new(conn, PolicyKind::Bfs.build(), CrawlConfig::default());
    crawler.add_seed("A", "a2");
    let mut last_cp = crawler.checkpoint();
    loop {
        if chaos.is_halted() {
            // The service died mid-crawl. Steps that observed the dead
            // service polluted the crawler's state (failed queries), so the
            // crawler is discarded; the last checkpoint taken *before* the
            // kill is the recovery point.
            drop(crawler);
            let fresh = figure1_server();
            let resumed =
                Crawler::resume(&*fresh, PolicyKind::Bfs.build(), &last_cp, CrawlConfig::default());
            return resumed.run();
        }
        last_cp = crawler.checkpoint();
        if crawler.step().is_none() {
            return crawler.into_report(StopReason::FrontierExhausted);
        }
    }
}

/// Killing the service at *every* frame index of the reference run, one at
/// a time, always recovers to the uninterrupted report via
/// checkpoint-resume.
#[test]
fn service_killed_at_every_frame_recovers_to_the_uninterrupted_report() {
    let baseline = {
        let server = figure1_server();
        let mut crawler = Crawler::new(&*server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", "a2");
        crawler.run()
    };
    // Count the reference run's wire frames with a no-fault chaos wire.
    let frames = {
        let server = figure1_server();
        let service = SourceService::start(Arc::clone(&server), ServeConfig::default());
        let chaos = Arc::new(ChaosState::new(ChaosPlan::new()));
        let conn = service.connect().with_chaos(Arc::clone(&chaos));
        let report = run_protocol_bfs(conn);
        assert_eq!(report.records, baseline.records, "fault-free protocol parity");
        chaos.frames_sent()
    };
    assert!(frames >= 4, "the reference crawl must actually use the wire");
    for halt_at in 1..=frames {
        let report = crawl_killed_at(figure1_server(), halt_at);
        assert_eq!(
            report.records, baseline.records,
            "kill at frame {halt_at}/{frames}: resumed crawl lost or duplicated records"
        );
        assert_eq!(
            report.queries, baseline.queries,
            "kill at frame {halt_at}/{frames}: resumed crawl issued a different query set"
        );
        assert_eq!(
            report.rounds, baseline.rounds,
            "kill at frame {halt_at}/{frames}: BFS resume must be cost-exact"
        );
    }
}

fn run_protocol_bfs<S: DataSource>(source: S) -> CrawlReport {
    let mut crawler = Crawler::new(source, PolicyKind::Bfs.build(), CrawlConfig::default());
    crawler.add_seed("A", "a2");
    crawler.run()
}

/// A random record: 2–5 `(attr, value-index)` fields over 3 attributes.
fn record_strategy() -> impl Strategy<Value = Vec<(u16, u8)>> {
    prop::collection::vec((0u16..3, 0u8..10), 2..=5)
}

fn table_from(records: &[Vec<(u16, u8)>]) -> UniversalTable {
    let schema = Schema::new(vec![
        AttrSpec::queriable("A"),
        AttrSpec::queriable("B"),
        AttrSpec::queriable("C"),
    ]);
    let mut t = UniversalTable::new(schema);
    for rec in records {
        let fields: Vec<(AttrId, String)> =
            rec.iter().map(|&(a, v)| (AttrId(a), format!("v{v}"))).collect();
        t.push_record_strs(fields.iter().map(|(a, s)| (*a, s.as_str())));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint-resume recovery holds on random databases too, with the
    /// kill frame drawn across the whole schedule.
    #[test]
    fn service_crash_recovery_on_random_databases(
        records in prop::collection::vec(record_strategy(), 1..20),
        halt_at in 1u64..60,
        seed_val in 0u8..8,
    ) {
        let table = table_from(&records);
        let seed = format!("v{seed_val}");
        let make_server = || {
            let spec = InterfaceSpec::permissive(table.schema(), 3);
            Arc::new(WebDbServer::new(table.clone(), spec))
        };
        let baseline = {
            let server = make_server();
            let mut c = Crawler::new(&*server, PolicyKind::Bfs.build(), CrawlConfig::default());
            c.add_seed("A", &seed);
            c.run()
        };

        let service = SourceService::start(make_server(), ServeConfig::default());
        let chaos = Arc::new(ChaosState::new(ChaosPlan::new().halt_at(halt_at)));
        let conn = service.connect().with_chaos(Arc::clone(&chaos));
        let mut crawler = Crawler::new(conn, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed("A", &seed);
        let mut last_cp = crawler.checkpoint();
        let report = loop {
            if chaos.is_halted() {
                drop(crawler);
                let fresh = make_server();
                let resumed = Crawler::resume(
                    &*fresh,
                    PolicyKind::Bfs.build(),
                    &last_cp,
                    CrawlConfig::default(),
                );
                break resumed.run();
            }
            last_cp = crawler.checkpoint();
            if crawler.step().is_none() {
                break crawler.into_report(StopReason::FrontierExhausted);
            }
        };
        prop_assert_eq!(report.records, baseline.records);
        prop_assert_eq!(report.queries, baseline.queries);
        prop_assert_eq!(report.rounds, baseline.rounds, "BFS resume is cost-exact");
    }
}
