//! Serving-tier parity suite: the protocol transport is observationally
//! identical to the in-process path.
//!
//! A crawl driven through a [`SourceService`] connection (frames over a
//! bounded queue, worker threads, wire re-encode/re-parse) must produce a
//! `CrawlReport` — counters, coverage, *and* the full query trace —
//! bit-identical to the same crawl run against the source in process. The
//! suite sweeps the same `DWC_FAULT_KIND` × `DWC_FAULT_SEED` matrix CI uses
//! for the crash suite, so parity is proven under bursts, stalls, and
//! corruption, not just on the happy path.
//!
//! Billing conservation rides along: every round the crawl report counts is
//! billed by exactly one counter on the other side of the seam
//! (`report.rounds == source.rounds_used()`), shed and cancelled requests
//! included.

use deep_web_crawler::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn imdb_server(seed: u64) -> Arc<WebDbServer> {
    let table = Preset::Imdb.table(0.002, seed);
    let spec = InterfaceSpec::permissive(table.schema(), 10).with_result_cap(40);
    Arc::new(WebDbServer::new(table, spec))
}

/// The fault plan the CI matrix selects via `DWC_FAULT_KIND`, mirroring the
/// crash suite's schedule so both suites cover the same cells.
fn matrix_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "none" => FaultPlan::new(),
        "burst" => FaultPlan::new().burst(8 + seed % 13, 40),
        "stall" => FaultPlan::seeded(seed, 600, 0.08, &[FaultKind::Stall { rounds: 3 }]),
        "corrupt" => FaultPlan::seeded(seed, 600, 0.10, &[FaultKind::Corrupt]),
        // `panic` cells cover supervisor restarts, which need the fleet; the
        // single-crawler parity run swaps in the mixed plan instead.
        _ => FaultPlan::seeded(
            seed,
            600,
            0.08,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        ),
    }
}

fn fault_matrix_cell() -> (String, u64) {
    let kind = std::env::var("DWC_FAULT_KIND").unwrap_or_else(|_| "mixed".into());
    let seed = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7);
    (kind, seed)
}

fn crawl_config() -> CrawlConfig {
    // Wire mode on BOTH transports: the in-process reference then exercises
    // the same render cache the service workers hit, so cache-hit counters
    // (part of the report) line up too.
    CrawlConfig::builder()
        .max_rounds(1_500)
        .prober(ProberMode::Wire)
        .max_retries(4)
        .build()
        .expect("valid crawl config")
}

fn run_crawl<S: DataSource>(source: S, config: CrawlConfig) -> CrawlReport {
    let mut crawler = Crawler::new(source, PolicyKind::GreedyLink.build(), config);
    crawler.add_seed("Language", "Language_0");
    crawler.add_seed("Actor", "Actor_0");
    crawler.run()
}

/// The tentpole invariant: in-process and protocol-backed crawls are
/// indistinguishable above the seam, fault matrix included.
#[test]
fn protocol_crawl_report_is_identical_to_in_process() {
    let (kind, seed) = fault_matrix_cell();

    let in_process =
        run_crawl(FaultPlanSource::new(imdb_server(3), matrix_plan(&kind, seed)), crawl_config());

    let faulty = Arc::new(FaultPlanSource::new(imdb_server(3), matrix_plan(&kind, seed)));
    let service = SourceService::start(Arc::clone(&faulty), ServeConfig::default());
    let conn = service.connect();
    let protocol = run_crawl(conn.clone(), crawl_config());

    assert_eq!(
        protocol, in_process,
        "fault cell {kind}/{seed}: protocol transport must reproduce the in-process report"
    );
    assert!(in_process.records > 0, "fault cell {kind}/{seed} harvested nothing");

    // Conservation across the seam: every round the crawl counted is billed
    // by exactly one source-side counter.
    assert_eq!(protocol.rounds, conn.rounds_used());
    drop(conn);
    let served = service.shutdown();
    assert_eq!(served.enqueued, protocol.rounds, "no shed/cancel at nominal load");
    assert_eq!(served.completed, served.enqueued, "queue fully drained");
    assert_eq!(served.shed, 0);
    assert_eq!(served.cancelled, 0);
}

/// Parity also holds through a connection pool: N logical connections into
/// one service are still one source, with one global bill.
#[test]
fn pooled_connections_preserve_parity() {
    let in_process = run_crawl(imdb_server(11), crawl_config());

    let service = SourceService::start(imdb_server(11), ServeConfig::default());
    let pool = service.connect_pool(4).expect("nonzero pool");
    let protocol = run_crawl(&pool, crawl_config());

    assert_eq!(protocol, in_process);
    assert_eq!(protocol.rounds, pool.rounds_used());
}

/// A crawl-wide token fired before the run stops the crawl at its first
/// budget check: zero rounds offered, zero rounds billed, stop reason
/// `Cancelled`.
#[test]
fn pre_fired_token_cancels_before_any_billing() {
    let token = CancelToken::new();
    token.cancel();
    let config = CrawlConfig::builder()
        .prober(ProberMode::Wire)
        .cancel(token)
        .build()
        .expect("valid crawl config");

    let server = imdb_server(5);
    let service = SourceService::start(Arc::clone(&server), ServeConfig::default());
    let conn = service.connect();
    let report = run_crawl(conn.clone(), config);

    assert_eq!(report.stop, StopReason::Cancelled);
    assert_eq!(report.rounds, 0);
    assert_eq!(conn.rounds_used(), 0);
    drop(conn);
    assert_eq!(service.shutdown(), ServiceReport::default());
}

/// A token fired mid-crawl stops the run promptly, and conservation holds at
/// whatever point it struck: the report's rounds equal the source-side bill.
#[test]
fn mid_crawl_cancellation_conserves_billing() {
    let token = CancelToken::new();
    let config = CrawlConfig::builder()
        .prober(ProberMode::Wire)
        .cancel(token.clone())
        .deadline(Duration::from_millis(250))
        .build()
        .expect("valid crawl config");

    let service = SourceService::start(imdb_server(5), ServeConfig::default());
    let conn = service.connect();
    let crawl = {
        let conn = conn.clone();
        std::thread::spawn(move || run_crawl(conn, config))
    };
    std::thread::sleep(Duration::from_millis(30));
    token.cancel();
    let report = crawl.join().expect("crawl thread");

    if report.stop == StopReason::Cancelled {
        assert!(report.rounds < conn.rounds_used() + 1_000, "cancel stops resubmission");
    }
    assert_eq!(report.rounds, conn.rounds_used(), "billing conserved wherever the token struck");
}

/// Deadlines that no in-flight request can meet turn every attempt into a
/// billed cancellation: the crawl gives up per its retry budget, and the
/// service's cancelled counter pays for each attempt (Def. 2.3).
#[test]
fn impossible_deadlines_are_billed_as_cancellations() {
    let config = ServeConfig::builder()
        .queue_depth(8)
        .latency(LatencyModel::Fixed(Duration::from_millis(20)))
        .build()
        .expect("valid serve config");
    let service = SourceService::start(imdb_server(5), config);
    let conn = service.connect();

    let crawl_config = CrawlConfig::builder()
        .prober(ProberMode::Wire)
        .deadline(Duration::from_nanos(1))
        .max_retries(2)
        .max_queries(3)
        .build()
        .expect("valid crawl config");
    let report = run_crawl(conn.clone(), crawl_config);

    assert_eq!(report.records, 0, "nothing survives an impossible deadline");
    assert!(report.rounds > 0, "attempts are still billed");
    assert_eq!(report.rounds, conn.rounds_used());
    drop(conn);
    let served = service.shutdown();
    assert_eq!(served.cancelled, report.rounds, "every attempt died at dequeue");
    assert_eq!(served.completed, 0);
}
