//! Property-based tests over randomly generated databases, spanning the
//! model, server, and crawler crates.

use deep_web_crawler::model::components::Connectivity;
use deep_web_crawler::model::domset::{
    exact_minimum_dominating_set, greedy_weighted_dominating_set, is_dominating_set, set_weight,
};
use deep_web_crawler::model::{AttrId, AttrSpec, AvGraph, Schema, UniversalTable, ValueId};
use deep_web_crawler::prelude::*;
use proptest::prelude::*;

/// A random record: 2–5 `(attr, value-index)` fields over 3 attributes with
/// value pools of 12 per attribute.
fn record_strategy() -> impl Strategy<Value = Vec<(u16, u8)>> {
    prop::collection::vec((0u16..3, 0u8..12), 2..=5)
}

fn table_from(records: &[Vec<(u16, u8)>]) -> UniversalTable {
    let schema = Schema::new(vec![
        AttrSpec::queriable("A"),
        AttrSpec::queriable("B"),
        AttrSpec::queriable("C"),
    ]);
    let mut t = UniversalTable::new(schema);
    for rec in records {
        let fields: Vec<(AttrId, String)> =
            rec.iter().map(|&(a, v)| (AttrId(a), format!("v{v}"))).collect();
        t.push_record_strs(fields.iter().map(|(a, s)| (*a, s.as_str())));
    }
    t
}

proptest! {
    // Whole-crawl properties are expensive per case; 64 random databases per
    // property keeps the suite fast while exploring plenty of shapes.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 2.1: an AVG edge exists iff the two values co-occur in at
    /// least one record.
    #[test]
    fn avg_edges_iff_cooccurrence(records in prop::collection::vec(record_strategy(), 1..30)) {
        let t = table_from(&records);
        let g = AvGraph::from_table(&t);
        // Forward: every record's values form a clique.
        for (_, rec) in t.iter() {
            let vals = rec.values();
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i + 1..] {
                    prop_assert!(g.has_edge(a, b), "record clique edge {a}-{b} missing");
                }
            }
        }
        // Backward: every edge is witnessed by some record.
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                let witnessed = t.iter().any(|(_, r)| r.contains(v) && r.contains(ValueId(w)));
                prop_assert!(witnessed, "edge {v}-{w} has no witnessing record");
            }
        }
    }

    /// Degree sums equal twice the edge count, and adjacency is symmetric.
    #[test]
    fn avg_degree_sum_is_twice_edges(records in prop::collection::vec(record_strategy(), 1..30)) {
        let t = table_from(&records);
        let g = AvGraph::from_table(&t);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                prop_assert!(g.has_edge(ValueId(w), v));
            }
        }
    }

    /// Greedy dominating sets are always dominating; on tiny graphs the exact
    /// optimum is also dominating and no heavier than the greedy result.
    #[test]
    fn dominating_sets_are_valid(records in prop::collection::vec(record_strategy(), 1..12)) {
        let t = table_from(&records);
        let g = AvGraph::from_table(&t);
        let weight = |v: ValueId| 1.0 + (v.0 % 3) as f64;
        let greedy = greedy_weighted_dominating_set(&g, weight);
        prop_assert!(is_dominating_set(&g, &greedy));
        if let Some(exact) = exact_minimum_dominating_set(&g, weight) {
            prop_assert!(is_dominating_set(&g, &exact));
            prop_assert!(set_weight(&exact, weight) <= set_weight(&greedy, weight) + 1e-9);
        }
    }

    /// Pagination partitions a query's accessible results: no duplicates, no
    /// losses, page sizes respected, for any page size and cap.
    #[test]
    fn pagination_partitions_results(
        records in prop::collection::vec(record_strategy(), 1..40),
        page_size in 1usize..7,
        cap in prop::option::of(1usize..30),
    ) {
        let t = table_from(&records);
        let mut spec = InterfaceSpec::permissive(t.schema(), page_size);
        if let Some(c) = cap {
            spec = spec.with_result_cap(c);
        }
        let server = WebDbServer::new(t, spec);
        let q = Query::ByString { attr: "A".into(), value: "v0".into() };
        let total = server.oracle_match_count(&q);
        let accessible = cap.map_or(total, |c| total.min(c));
        let mut seen = std::collections::HashSet::new();
        let mut page = 0;
        loop {
            let p = server.query_page(&q, page).unwrap();
            prop_assert!(p.records.len() <= page_size);
            for r in &p.records {
                prop_assert!(seen.insert(r.key), "duplicate key {} across pages", r.key);
            }
            if !p.has_more {
                break;
            }
            page += 1;
            prop_assert!(page < 1000, "pagination must terminate");
        }
        prop_assert_eq!(seen.len(), accessible, "accessible results exactly covered");
    }

    /// Crawler completeness: from any seed, an unlimited-budget BFS crawl
    /// harvests exactly the records the connectivity analysis says are
    /// reachable.
    #[test]
    fn crawl_is_complete_wrt_reachability(
        records in prop::collection::vec(record_strategy(), 1..25),
        seed_attr in 0u16..3,
        seed_val in 0u8..12,
    ) {
        let t = table_from(&records);
        let n = t.num_records();
        let seed_string = format!("v{seed_val}");
        let expected = match t.interner().get(AttrId(seed_attr), &seed_string) {
            Some(v) => {
                let mut conn = Connectivity::analyze(&t);
                (conn.reachable_coverage(&[v]) * n as f64).round() as u64
            }
            None => 0,
        };
        let attr_name = t.schema().attr(AttrId(seed_attr)).name.clone();
        let server = WebDbServer::new(t, InterfaceSpec::permissive(&Schema::new(vec![
            AttrSpec::queriable("A"), AttrSpec::queriable("B"), AttrSpec::queriable("C"),
        ]), 3));
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), CrawlConfig::default());
        crawler.add_seed(&attr_name, &seed_string);
        let report = crawler.run();
        prop_assert_eq!(report.records, expected);
    }

    /// Every policy harvests the same record set on the same source (with
    /// unlimited budget) — selection order changes cost, never convergence.
    #[test]
    fn policies_agree_on_convergence(
        records in prop::collection::vec(record_strategy(), 1..20),
        seed_val in 0u8..12,
    ) {
        let t = table_from(&records);
        let seed = format!("v{seed_val}");
        let run = |kind: PolicyKind| {
            let server = WebDbServer::new(t.clone(), InterfaceSpec::permissive(t.schema(), 4));
            let mut crawler = Crawler::new(&server, kind.build(), CrawlConfig::default());
            crawler.add_seed("B", &seed);
            crawler.run().records
        };
        let bfs = run(PolicyKind::Bfs);
        prop_assert_eq!(run(PolicyKind::Dfs), bfs);
        prop_assert_eq!(run(PolicyKind::Random(9)), bfs);
        prop_assert_eq!(run(PolicyKind::GreedyLink), bfs);
    }

    /// Capture–recapture is exact whenever one sample is the whole
    /// population.
    #[test]
    fn capture_recapture_exact_on_full_sample(pop in 1usize..200, frac in 0.1f64..1.0) {
        let full: Vec<u32> = (0..pop as u32).collect();
        let partial: Vec<u32> =
            (0..pop as u32).filter(|&i| (i as f64) < frac * pop as f64).collect();
        prop_assume!(!partial.is_empty());
        let est = deep_web_crawler::stats::lincoln_petersen(
            full.len(),
            partial.len(),
            deep_web_crawler::stats::capture::sorted_intersection_size(&full, &partial),
        ).unwrap();
        prop_assert!((est - pop as f64).abs() < 1e-9);
    }
}

proptest! {
    // Serving-tier cases spawn worker threads and run whole crawls; a
    // smaller case count keeps the suite quick while still sweeping queue
    // contention, deadlines, and latency seeds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Def. 2.3 conservation across the serving seam: for any database,
    /// queue pressure, deadline, and latency seed, the rounds the crawls
    /// count equal the rounds the source side billed — executed requests on
    /// the inner counter, shed and cancelled ones on the service's. Neither
    /// backpressure nor cancellation can lose or double-bill a round.
    #[test]
    fn shed_and_cancel_conserve_round_billing(
        records in prop::collection::vec(record_strategy(), 5..30),
        deadline_us in prop::option::of(80u64..4_000),
        seed in 0u64..1_000,
    ) {
        use deep_web_crawler::core::serve::SourceService;
        use std::sync::Arc;
        use std::time::Duration;

        let t = table_from(&records);
        let server = Arc::new(WebDbServer::new(
            t.clone(),
            InterfaceSpec::permissive(t.schema(), 2),
        ));
        // A one-slot queue under two competing crawls forces sheds; the
        // latency floor keeps the queue occupied long enough to collide.
        let config = ServeConfig::builder()
            .queue_depth(1)
            .workers(1)
            .latency(LatencyModel::Uniform {
                min: Duration::from_micros(20),
                max: Duration::from_micros(400),
            })
            .seed(seed)
            .build()
            .expect("valid serve config");
        let service = SourceService::start(Arc::clone(&server), config);
        let pool = Arc::new(service.connect_pool(2).expect("nonzero pool"));

        let crawl = |policy_seed: u64| {
            let pool = Arc::clone(&pool);
            let mut builder = CrawlConfig::builder()
                .max_rounds(60)
                .prober(ProberMode::Wire)
                .max_retries(3);
            if let Some(us) = deadline_us {
                builder = builder.deadline(Duration::from_micros(us));
            }
            let config = builder.build().expect("valid crawl config");
            std::thread::spawn(move || {
                let mut crawler =
                    Crawler::new(pool, PolicyKind::Random(policy_seed).build(), config);
                crawler.add_seed("A", "v0");
                crawler.add_seed("B", "v1");
                crawler.run().rounds
            })
        };
        let threads = [crawl(1), crawl(2)];
        let crawled: u64 = threads.into_iter().map(|t| t.join().expect("crawl thread")).sum();

        prop_assert_eq!(crawled, pool.rounds_used(), "every round billed exactly once");

        drop(pool);
        let served = service.shutdown();
        prop_assert_eq!(served.enqueued, served.completed + served.cancelled,
            "a drained queue completes or cancels everything it admitted");
        prop_assert_eq!(crawled, server.rounds_used() + served.shed + served.cancelled,
            "executed + shed + cancelled partitions the crawl's rounds");
    }
}
