//! Small-scale assertions of the paper's headline experimental *shapes* —
//! the same comparisons the figure binaries print, pinned as tests so a
//! regression in any policy breaks the build.

use deep_web_crawler::datagen::paired::{subset_by_min_year, PairedDataset, PairedSpec};
use deep_web_crawler::datagen::survey::{paper_table1, run_survey};
use deep_web_crawler::model::degree::DegreeDistribution;
use deep_web_crawler::prelude::*;
use std::sync::Arc;

fn rounds_to(
    table: &UniversalTable,
    kind: &PolicyKind,
    coverage: f64,
    seeds: &[(&str, &str)],
) -> u64 {
    let n = table.num_records();
    let server = WebDbServer::new(table.clone(), InterfaceSpec::permissive(table.schema(), 10));
    let config =
        CrawlConfig::builder().known_target_size(n).target_coverage(coverage).build().unwrap();
    let mut crawler = Crawler::new(&server, kind.build(), config);
    for (a, v) in seeds {
        crawler.add_seed(a, v);
    }
    let report = crawler.run();
    report.trace.rounds_to_coverage(coverage, n).unwrap_or(u64::MAX)
}

/// Figure 3's shape: GL reaches 90% coverage with fewer rounds than DFS and
/// Random, and no worse than ~1.2× BFS, on a small eBay instance.
#[test]
fn fig3_shape_gl_beats_naive() {
    let table = Preset::Ebay.table(0.02, 1);
    let seeds = [("Categories", "Categories_0"), ("Seller", "Seller_1")];
    let gl = rounds_to(&table, &PolicyKind::GreedyLink, 0.9, &seeds);
    let dfs = rounds_to(&table, &PolicyKind::Dfs, 0.9, &seeds);
    let random = rounds_to(&table, &PolicyKind::Random(3), 0.9, &seeds);
    let bfs = rounds_to(&table, &PolicyKind::Bfs, 0.9, &seeds);
    assert!(gl < dfs, "GL ({gl}) must beat DFS ({dfs})");
    assert!(gl < random, "GL ({gl}) must beat Random ({random})");
    assert!(
        (gl as f64) < bfs as f64 * 1.2,
        "GL ({gl}) must be at least competitive with BFS ({bfs})"
    );
}

/// Figure 2's shape: the generated DBLP degree distribution is heavy-tailed
/// (clearly negative log–log slope with a decent fit).
#[test]
fn fig2_shape_power_law_degrees() {
    let table = Preset::Dblp.table(0.01, 1);
    let g = AvGraph::from_table(&table);
    let fit = DegreeDistribution::of_graph(&g).power_law_fit().unwrap();
    assert!(fit.slope < -0.7, "slope {}", fit.slope);
    assert!(fit.r_squared > 0.5, "R² {}", fit.r_squared);
}

/// Figure 5's shape: with the same budget, the DM crawler covers at least as
/// much of the Amazon-like target as GL at the half-budget snapshot.
#[test]
fn fig5_shape_dm_dominates_gl_mid_budget() {
    let pair = PairedDataset::generate(PairedSpec { scale: 0.02, ..Default::default() });
    let n = pair.target.num_records();
    let budget = 200u64;
    let dm = Arc::new(DomainTable::build(subset_by_min_year(&pair.sample, 1960)));
    let run = |kind: PolicyKind| {
        let server = WebDbServer::new(
            pair.target.clone(),
            InterfaceSpec::permissive(pair.target.schema(), 10).with_result_cap(64),
        );
        let config =
            CrawlConfig::builder().known_target_size(n).max_rounds(budget).build().unwrap();
        let mut crawler = Crawler::new(&server, kind.build(), config);
        crawler.add_seed("Language", "Language_0");
        crawler.add_seed("Actor", "Actor_1");
        crawler.run()
    };
    let gl = run(PolicyKind::GreedyLink);
    let dm_report = run(PolicyKind::Domain(dm));
    let at = budget / 2;
    let gl_cov = gl.trace.coverage_at_rounds(at, n);
    let dm_cov = dm_report.trace.coverage_at_rounds(at, n);
    assert!(
        dm_cov >= gl_cov,
        "DM ({dm_cov:.3}) must be at least GL ({gl_cov:.3}) at the half-budget snapshot"
    );
}

/// Figure 6's shape: tighter result caps reduce coverage at a fixed budget,
/// monotonically.
#[test]
fn fig6_shape_caps_degrade_monotonically() {
    let pair = PairedDataset::generate(PairedSpec { scale: 0.02, ..Default::default() });
    let n = pair.target.num_records();
    let budget = 150u64;
    let run = |cap: usize| {
        let server = WebDbServer::new(
            pair.target.clone(),
            InterfaceSpec::permissive(pair.target.schema(), 10).with_result_cap(cap),
        );
        let config =
            CrawlConfig::builder().known_target_size(n).max_rounds(budget).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
        crawler.add_seed("Language", "Language_0");
        crawler.run().trace.coverage_at_rounds(budget, n)
    };
    let generous = run(10_000);
    let mid = run(50);
    let tight = run(10);
    assert!(generous >= mid, "generous {generous:.3} vs cap-50 {mid:.3}");
    assert!(mid >= tight, "cap-50 {mid:.3} vs cap-10 {tight:.3}");
    assert!(generous > tight, "caps must bite overall");
}

/// Table 1's shape: the simulated survey reproduces the paper's headline —
/// the overwhelming majority of product sources are crawlable with
/// single-value queries, with Car the clear outlier.
#[test]
fn table1_shape_crawlability() {
    let outcomes = run_survey(&paper_table1(), 2006);
    let car = outcomes.iter().find(|o| o.spec.domain == "Car").unwrap();
    for o in &outcomes {
        if o.spec.domain == "Car" {
            assert!(o.observed_crawlable < 0.8, "Car sources are mostly form-locked");
        } else {
            assert!(
                o.observed_crawlable > 0.85,
                "{} should be mostly crawlable ({:.2})",
                o.spec.domain,
                o.observed_crawlable
            );
        }
    }
    assert!(car.observed_single_attr < 0.75);
}

/// The size-estimation pipeline lands within a factor-2 band of the truth on
/// a simulated target (the estimator is biased by sample dependence, as any
/// capture–recapture over crawl samples is).
#[test]
fn size_estimation_is_in_the_right_ballpark() {
    let table = Preset::Imdb.table(0.005, 5);
    let true_size = table.num_records() as f64;
    let mut samples = Vec::new();
    for i in 0..4u64 {
        let server = WebDbServer::new(table.clone(), InterfaceSpec::permissive(table.schema(), 10));
        let config = CrawlConfig::builder().max_rounds(80).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Random(i).build(), config);
        crawler.add_seed("Language", &format!("Language_{i}"));
        while crawler.rounds() < 80 {
            if crawler.step().is_none() {
                break;
            }
        }
        let mut keys: Vec<u32> = (0..table.num_records() as u32)
            .filter(|&k| crawler.state().local.contains_key(u64::from(k)))
            .collect();
        keys.sort_unstable();
        samples.push(keys);
    }
    let estimates = deep_web_crawler::stats::pairwise_estimates(&samples);
    assert!(!estimates.is_empty());
    let mean = deep_web_crawler::stats::mean(&estimates);
    assert!(
        mean > true_size * 0.5 && mean < true_size * 2.0,
        "estimate {mean:.0} vs true {true_size}"
    );
}
