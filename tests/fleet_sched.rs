//! Acceptance suite for the work-stealing fleet scheduler.
//!
//! * **Budget conservation** — a property sweep over job counts × worker
//!   counts × budgets × slices × allocation strategies: the fleet never
//!   bills more than `total_rounds`, and the pooled engine's report is
//!   identical to the thread-per-job baseline's on deterministic sources
//!   (both engines split budget through the same allocator, so any drift
//!   is a scheduler bug, not an allocation difference).
//! * **Victim isolation** — a slice panic kills exactly the faulty job;
//!   the pool keeps draining its siblings, which finish untouched.
//! * **Determinism** — a `workers = 1` fleet is bit-for-bit reproducible:
//!   same reports (per-query traces included) and same slice schedule on
//!   every run.
//! * **Stress matrix** — the CI fault matrix (`DWC_FAULT_KIND` ×
//!   `DWC_FAULT_SEED`) replayed at the pool width given by `DWC_WORKERS`,
//!   so supervision invariants are exercised at 1, 2, and 8 workers.

use deep_web_crawler::core::fleet::{
    run_fleet, run_fleet_supervised, run_fleet_thread_per_job, AllocCycle, AllocationStrategy,
    Allocator, EvenAllocator, FleetConfig, FleetJob, HarvestAllocator, WeightedFairAllocator,
};
use deep_web_crawler::core::replay_usage;
use deep_web_crawler::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn figure1_server() -> WebDbServer {
    let t = deep_web_crawler::model::fixtures::figure1_table();
    let spec = InterfaceSpec::permissive(t.schema(), 10);
    WebDbServer::new(t, spec)
}

fn scratch_store(name: &str) -> CheckpointStore {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dwc-fleetsched-{}-{}-{name}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    CheckpointStore::new(dir.join("job.ckpt"))
}

/// One self-contained figure-1 job. Every figure-1 query costs exactly one
/// elapsed round (5 records, page size 10, no faults), which is what makes
/// budget conservation exact rather than "within one query" below.
fn job(seed_value: &str) -> FleetJob<WebDbServer> {
    FleetJob {
        source: figure1_server(),
        policy: PolicyKind::GreedyLink,
        seeds: vec![("A".into(), seed_value.to_string())],
        config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
        resume: None,
        tenant: None,
    }
}

fn jobs(n: usize) -> Vec<FleetJob<WebDbServer>> {
    let seeds = ["a1", "a2", "a3"];
    (0..n).map(|i| job(seeds[i % seeds.len()])).collect()
}

/// Pool widths to sweep: the CI matrix pins one via `DWC_WORKERS`; local
/// runs cover the serial, small, and oversubscribed cases.
fn worker_counts() -> Vec<usize> {
    match std::env::var("DWC_WORKERS").ok().and_then(|s| s.parse().ok()) {
        Some(w) => vec![w],
        None => vec![1, 2, 8],
    }
}

/// The property sweep: billed rounds never exceed the budget, and the
/// pooled report equals the thread-per-job baseline, across the whole
/// parameter grid.
#[test]
fn budget_is_conserved_and_reports_match_baseline_across_the_grid() {
    for &n in &[1usize, 3, 17] {
        for &workers in &worker_counts() {
            for &total in &[5u64, 37, 200, 10_000] {
                for &slice in &[1u64, 7, 50] {
                    for &alloc in &[
                        AllocationStrategy::Even,
                        AllocationStrategy::HarvestProportional,
                        AllocationStrategy::WeightedFair,
                    ] {
                        let config = || {
                            FleetConfig::builder()
                                .total_rounds(total)
                                .slice(slice)
                                .allocation(alloc)
                                .workers(workers)
                                .build()
                                .unwrap()
                        };
                        let ctx = format!(
                            "jobs={n} workers={workers} total={total} slice={slice} alloc={alloc:?}"
                        );
                        let pooled = run_fleet(jobs(n), config());
                        assert!(
                            pooled.total_rounds <= total,
                            "budget overrun ({} > {total}) at {ctx}",
                            pooled.total_rounds
                        );
                        let billed: u64 = pooled.sources.iter().map(|r| r.elapsed_rounds()).sum();
                        assert_eq!(billed, pooled.total_rounds, "billing must be exact at {ctx}");
                        assert!(
                            pooled.scheduler.rounds_executed <= pooled.scheduler.rounds_granted,
                            "one-round queries can never overshoot their grant at {ctx}"
                        );
                        let baseline = run_fleet_thread_per_job(jobs(n), config());
                        assert_eq!(
                            pooled.sources, baseline.sources,
                            "pooled report diverged from thread-per-job at {ctx}"
                        );
                        assert_eq!(pooled.total_rounds, baseline.total_rounds, "at {ctx}");
                    }
                }
            }
        }
    }
}

/// A panicking slice must take down only its own job: the supervisor
/// rebuilds the victim from its checkpoint while the pool keeps draining
/// the three healthy siblings, whose health stays spotless.
#[test]
fn slice_panic_restarts_only_the_victim_job() {
    for &workers in &worker_counts() {
        let store = scratch_store("victim");
        let mut fleet_jobs: Vec<FleetJob<FaultPlanSource<Arc<WebDbServer>>>> = Vec::new();
        for i in 0..4 {
            let plan = if i == 0 { FaultPlan::new().panic_at(4) } else { FaultPlan::new() };
            let mut builder = CrawlConfig::builder().known_target_size(5);
            if i == 0 {
                builder = builder.checkpoint_store(store.clone()).checkpoint_every(1);
            }
            fleet_jobs.push(FleetJob {
                source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".into())],
                config: builder.build().unwrap(),
                resume: None,
                tenant: None,
            });
        }
        let config =
            FleetConfig::builder().total_rounds(2_000).slice(8).workers(workers).build().unwrap();
        let report = run_fleet_supervised(fleet_jobs, config);
        assert_eq!(
            report.health[0].worker_restarts, 1,
            "exactly one restart for the victim at workers={workers}"
        );
        assert!(!report.health[0].abandoned);
        for (i, h) in report.health.iter().enumerate().skip(1) {
            assert_eq!(
                (h.worker_restarts, h.breaker_trips, h.abandoned),
                (0, 0, false),
                "healthy job {i} must be untouched by job 0's panic at workers={workers}"
            );
        }
        for (i, r) in report.sources.iter().enumerate() {
            assert_eq!(r.records, 5, "job {i} must finish its harvest at workers={workers}");
        }
    }
}

/// `workers = 1` is the reproducibility anchor: one worker drains the
/// injector strictly in submission order, so two identical runs produce
/// identical reports (per-query traces included) *and* identical slice
/// schedules.
#[test]
fn single_worker_fleet_is_fully_deterministic() {
    let run = || {
        let config = FleetConfig::builder()
            .total_rounds(700)
            .slice(9)
            .allocation(AllocationStrategy::HarvestProportional)
            .workers(1)
            .build()
            .unwrap();
        run_fleet(jobs(5), config)
    };
    let a = run();
    let b = run();
    assert_eq!(a.sources, b.sources, "reports must be bit-for-bit identical");
    assert_eq!(a.scheduler, b.scheduler, "the slice schedule must be identical");
    assert!(a.scheduler.steals == 0, "a single worker has nobody to steal from");
}

/// Builds the fault plan the CI matrix selects via `DWC_FAULT_KIND`,
/// scaled to a figure-1 crawl (~15 requests per attempt).
fn matrix_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "burst" => FaultPlan::new().burst(2 + seed % 5, 6),
        "stall" => FaultPlan::seeded(seed, 40, 0.15, &[FaultKind::Stall { rounds: 2 }]),
        "corrupt" => FaultPlan::seeded(seed, 40, 0.15, &[FaultKind::Corrupt]),
        "panic" => FaultPlan::new().panic_at(3 + seed % 7),
        _ => FaultPlan::seeded(
            seed,
            40,
            0.12,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        ),
    }
}

/// The CI stress cell: a supervised fleet (one faulted job among healthy
/// siblings) must preserve the full harvest at whatever pool width
/// `DWC_WORKERS` pins — supervision semantics cannot depend on how slices
/// interleave across workers.
#[test]
fn fault_matrix_holds_at_every_pool_width() {
    let kind = std::env::var("DWC_FAULT_KIND").unwrap_or_else(|_| "mixed".into());
    let seed: u64 = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    for &workers in &worker_counts() {
        let store = scratch_store("matrix");
        let mut fleet_jobs: Vec<FleetJob<FaultPlanSource<Arc<WebDbServer>>>> = Vec::new();
        for i in 0..3 {
            let plan = if i == 0 { matrix_plan(&kind, seed) } else { FaultPlan::new() };
            let mut builder =
                CrawlConfig::builder().known_target_size(5).max_requeues(10).max_retries(8);
            if i == 0 {
                builder = builder.checkpoint_store(store.clone()).checkpoint_every(1);
            }
            fleet_jobs.push(FleetJob {
                source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".into())],
                config: builder.build().unwrap(),
                resume: None,
                tenant: None,
            });
        }
        let config = FleetConfig::builder()
            .total_rounds(4_000)
            .slice(8)
            .max_restarts(5)
            .breaker(BreakerConfig { trip_after: 3, cooldown: 2 })
            .workers(workers)
            .build()
            .unwrap();
        let report = run_fleet_supervised(fleet_jobs, config);
        assert!(
            !report.health[0].abandoned,
            "kind {kind} seed {seed} workers {workers}: restart budget exhausted"
        );
        for (i, r) in report.sources.iter().enumerate() {
            assert_eq!(
                r.records, 5,
                "kind {kind} seed {seed} workers {workers}: job {i} lost records"
            );
        }
        if kind == "panic" {
            assert!(report.worker_restarts() >= 1, "panic plan must force a restart");
        }
    }
}

/// Satellite: a budget scarcer than the job count still makes progress —
/// the even split floors at one round and the sequential clamp hands those
/// rounds to the earliest jobs instead of granting nobody anything.
#[test]
fn even_allocator_floors_at_one_round_when_budget_is_scarcer_than_jobs() {
    let active: Vec<usize> = (0..5).collect();
    let rates = vec![1.0; 5];
    let mut alloc = EvenAllocator;
    let grants = alloc.allocate(&AllocCycle {
        active: &active,
        rates: &rates,
        remaining: 3,
        slice: 8,
        tenant_of: &[None; 5],
        tenants: &[],
        tenant_used: &[],
    });
    assert_eq!(grants, vec![(0, 1), (1, 1), (2, 1)], "3 budget rounds reach the first 3 of 5 jobs");
}

/// Satellite: all-zero recent harvest rates under `HarvestProportional`
/// degenerate to an even split — the 5% floor keeps zero-rate jobs equal
/// peers rather than dividing by zero or starving everyone.
#[test]
fn harvest_allocator_splits_evenly_when_all_rates_are_zero() {
    let active = [0usize, 1, 2];
    let rates = [0.0; 3];
    let mut alloc = HarvestAllocator;
    let grants = alloc.allocate(&AllocCycle {
        active: &active,
        rates: &rates,
        remaining: 1000,
        slice: 9,
        tenant_of: &[None; 3],
        tenants: &[],
        tenant_used: &[],
    });
    assert_eq!(grants, vec![(0, 3), (1, 3), (2, 3)]);
}

/// Satellite: a single-job fleet absorbs the whole slice under every
/// strategy — and the end-to-end run finishes its harvest.
#[test]
fn single_job_fleet_absorbs_every_slice_under_every_strategy() {
    for alloc in [
        AllocationStrategy::Even,
        AllocationStrategy::HarvestProportional,
        AllocationStrategy::WeightedFair,
    ] {
        let mut allocator = alloc.build_allocator();
        let grants = allocator.allocate(&AllocCycle {
            active: &[0],
            rates: &[0.4],
            remaining: 1000,
            slice: 13,
            tenant_of: &[None],
            tenants: &[],
            tenant_used: &[],
        });
        assert_eq!(grants, vec![(0, 13)], "{alloc:?}: one job takes the full slice");
        let config = FleetConfig::builder()
            .total_rounds(200)
            .slice(13)
            .allocation(alloc)
            .workers(1)
            .build()
            .unwrap();
        let report = run_fleet(vec![job("a2")], config);
        assert_eq!(report.sources[0].records, 5, "{alloc:?}: the lone job finishes");
        assert_eq!(report.sources[0].stop, StopReason::FrontierExhausted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: with no quotas, weighted-fair grants conserve the cycle
    /// slice *exactly* across cycles — largest-remainder entitlements and
    /// the rotating intra-tenant remainder split never leak a round.
    #[test]
    fn weighted_fair_conserves_the_cycle_slice_exactly(
        spec in prop::collection::vec((1u32..9, 1usize..4), 1..6),
        slice in 1u64..200,
        remaining in 1u64..400,
        cycles in 1usize..4,
    ) {
        let tenants: Vec<Tenant> = spec
            .iter()
            .enumerate()
            .map(|(i, &(w, _))| Tenant::new(i as u32).with_weight(w))
            .collect();
        let mut tenant_of = Vec::new();
        for (slot, &(_, fanout)) in spec.iter().enumerate() {
            for _ in 0..fanout {
                tenant_of.push(Some(slot));
            }
        }
        let active: Vec<usize> = (0..tenant_of.len()).collect();
        let rates = vec![1.0; tenant_of.len()];
        let used = vec![0u64; tenants.len()];
        let mut alloc = WeightedFairAllocator::default();
        for _ in 0..cycles {
            let grants = alloc.allocate(&AllocCycle {
                active: &active,
                rates: &rates,
                remaining,
                slice,
                tenant_of: &tenant_of,
                tenants: &tenants,
                tenant_used: &used,
            });
            let granted: u64 = grants.iter().map(|&(_, g)| g).sum();
            prop_assert_eq!(granted, slice.min(remaining), "unquota'd cycles grant the full slice");
            for &(j, g) in &grants {
                prop_assert!(j < tenant_of.len(), "grants only to known jobs");
                prop_assert!(g > 0, "zero grants are filtered out");
            }
        }
    }

    /// Satellite: weighted-fair grants never exceed a tenant's quota
    /// headroom, and redistribution fills the slice up to the aggregate
    /// headroom — no round is lost to the clamp.
    #[test]
    fn weighted_fair_never_exceeds_quota_headroom(
        spec in prop::collection::vec((1u32..9, 1u64..60, 0u64..80), 1..6),
        slice in 1u64..200,
    ) {
        let tenants: Vec<Tenant> = spec
            .iter()
            .enumerate()
            .map(|(i, &(w, q, _))| Tenant::new(i as u32).with_weight(w).with_quota(q))
            .collect();
        let used: Vec<u64> = spec.iter().map(|&(_, _, u)| u).collect();
        let tenant_of: Vec<Option<usize>> = (0..tenants.len()).map(Some).collect();
        let active: Vec<usize> = (0..tenants.len()).collect();
        let rates = vec![1.0; tenants.len()];
        let mut alloc = WeightedFairAllocator::default();
        let grants = alloc.allocate(&AllocCycle {
            active: &active,
            rates: &rates,
            remaining: 10_000,
            slice,
            tenant_of: &tenant_of,
            tenants: &tenants,
            tenant_used: &used,
        });
        let headroom_total: u64 = spec.iter().map(|&(_, q, u)| q.saturating_sub(u)).sum();
        let granted: u64 = grants.iter().map(|&(_, g)| g).sum();
        prop_assert_eq!(
            granted,
            slice.min(headroom_total),
            "grants fill the slice up to the aggregate headroom"
        );
        for &(j, g) in &grants {
            prop_assert!(
                g <= spec[j].1.saturating_sub(spec[j].2),
                "job {} was granted past its tenant's headroom", j
            );
        }
    }

    /// The legacy allocators under arbitrary harvest rates: grants never
    /// overspend the cycle, and somebody always makes progress.
    #[test]
    fn legacy_allocators_never_overspend_the_cycle(
        n in 1usize..9,
        rates in prop::collection::vec(0.0f64..1.0, 9),
        slice in 1u64..60,
        remaining in 1u64..120,
    ) {
        let active: Vec<usize> = (0..n).collect();
        let tenant_of = vec![None; n];
        for strategy in [AllocationStrategy::Even, AllocationStrategy::HarvestProportional] {
            let mut alloc = strategy.build_allocator();
            let grants = alloc.allocate(&AllocCycle {
                active: &active,
                rates: &rates[..n],
                remaining,
                slice,
                tenant_of: &tenant_of,
                tenants: &[],
                tenant_used: &[],
            });
            let granted: u64 = grants.iter().map(|&(_, g)| g).sum();
            prop_assert!(granted <= slice.min(remaining), "{:?} overspent", strategy);
            prop_assert!(granted > 0, "{:?} granted nothing", strategy);
        }
    }
}

/// Satellite: per-tenant ledgers survive the whole fault matrix — the
/// `rounds` fields sum exactly to the fleet total, and replaying
/// `FleetReport::events` through a fresh registry reproduces every ledger
/// bit-for-bit, at every pool width, under every `DWC_FAULT_KIND` plan.
#[test]
fn tenanted_fault_matrix_conserves_and_replays_ledgers() {
    let kind = std::env::var("DWC_FAULT_KIND").unwrap_or_else(|_| "mixed".into());
    let seed: u64 = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    for &workers in &worker_counts() {
        let store = scratch_store("tenant-ledger");
        let mut fleet_jobs: Vec<FleetJob<FaultPlanSource<Arc<WebDbServer>>>> = Vec::new();
        for i in 0..3 {
            let plan = if i == 0 { matrix_plan(&kind, seed) } else { FaultPlan::new() };
            let mut builder =
                CrawlConfig::builder().known_target_size(5).max_requeues(10).max_retries(8);
            if i == 0 {
                builder = builder.checkpoint_store(store.clone()).checkpoint_every(1);
            }
            fleet_jobs.push(FleetJob {
                source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".into())],
                config: builder.build().unwrap(),
                resume: None,
                tenant: Some(TenantId(if i == 0 { 0 } else { 1 })),
            });
        }
        let config = FleetConfig::builder()
            .total_rounds(4_000)
            .slice(8)
            .max_restarts(5)
            .breaker(BreakerConfig { trip_after: 3, cooldown: 2 })
            .allocation(AllocationStrategy::WeightedFair)
            .workers(workers)
            .tenants(vec![Tenant::new(0).with_weight(2), Tenant::new(1)])
            .build()
            .unwrap();
        let report = run_fleet_supervised(fleet_jobs, config);
        for (i, r) in report.sources.iter().enumerate() {
            assert_eq!(r.records, 5, "kind {kind} workers {workers}: job {i} lost records");
        }
        let ledger_rounds: u64 = report.usage.iter().map(|(_, l)| l.rounds).sum();
        assert_eq!(
            ledger_rounds, report.total_rounds,
            "kind {kind} workers {workers}: ledgers must conserve the billed total"
        );
        let replayed: Vec<(TenantId, UsageLedger)> = replay_usage(&report.events)
            .into_iter()
            .map(|(id, ledger)| (TenantId(id), ledger))
            .collect();
        assert_eq!(
            replayed, report.usage,
            "kind {kind} workers {workers}: the usage section must replay bit-for-bit"
        );
    }
}
