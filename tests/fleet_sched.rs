//! Acceptance suite for the work-stealing fleet scheduler.
//!
//! * **Budget conservation** — a property sweep over job counts × worker
//!   counts × budgets × slices × allocation strategies: the fleet never
//!   bills more than `total_rounds`, and the pooled engine's report is
//!   identical to the thread-per-job baseline's on deterministic sources
//!   (both engines split budget through the same allocator, so any drift
//!   is a scheduler bug, not an allocation difference).
//! * **Victim isolation** — a slice panic kills exactly the faulty job;
//!   the pool keeps draining its siblings, which finish untouched.
//! * **Determinism** — a `workers = 1` fleet is bit-for-bit reproducible:
//!   same reports (per-query traces included) and same slice schedule on
//!   every run.
//! * **Stress matrix** — the CI fault matrix (`DWC_FAULT_KIND` ×
//!   `DWC_FAULT_SEED`) replayed at the pool width given by `DWC_WORKERS`,
//!   so supervision invariants are exercised at 1, 2, and 8 workers.

use deep_web_crawler::core::fleet::{
    run_fleet, run_fleet_supervised, run_fleet_thread_per_job, AllocationStrategy, FleetConfig,
    FleetJob,
};
use deep_web_crawler::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn figure1_server() -> WebDbServer {
    let t = deep_web_crawler::model::fixtures::figure1_table();
    let spec = InterfaceSpec::permissive(t.schema(), 10);
    WebDbServer::new(t, spec)
}

fn scratch_store(name: &str) -> CheckpointStore {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dwc-fleetsched-{}-{}-{name}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    CheckpointStore::new(dir.join("job.ckpt"))
}

/// One self-contained figure-1 job. Every figure-1 query costs exactly one
/// elapsed round (5 records, page size 10, no faults), which is what makes
/// budget conservation exact rather than "within one query" below.
fn job(seed_value: &str) -> FleetJob<WebDbServer> {
    FleetJob {
        source: figure1_server(),
        policy: PolicyKind::GreedyLink,
        seeds: vec![("A".into(), seed_value.to_string())],
        config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
        resume: None,
    }
}

fn jobs(n: usize) -> Vec<FleetJob<WebDbServer>> {
    let seeds = ["a1", "a2", "a3"];
    (0..n).map(|i| job(seeds[i % seeds.len()])).collect()
}

/// Pool widths to sweep: the CI matrix pins one via `DWC_WORKERS`; local
/// runs cover the serial, small, and oversubscribed cases.
fn worker_counts() -> Vec<usize> {
    match std::env::var("DWC_WORKERS").ok().and_then(|s| s.parse().ok()) {
        Some(w) => vec![w],
        None => vec![1, 2, 8],
    }
}

/// The property sweep: billed rounds never exceed the budget, and the
/// pooled report equals the thread-per-job baseline, across the whole
/// parameter grid.
#[test]
fn budget_is_conserved_and_reports_match_baseline_across_the_grid() {
    for &n in &[1usize, 3, 17] {
        for &workers in &worker_counts() {
            for &total in &[5u64, 37, 200, 10_000] {
                for &slice in &[1u64, 7, 50] {
                    for &alloc in
                        &[AllocationStrategy::Even, AllocationStrategy::HarvestProportional]
                    {
                        let config = || {
                            FleetConfig::builder()
                                .total_rounds(total)
                                .slice(slice)
                                .allocation(alloc)
                                .workers(workers)
                                .build()
                                .unwrap()
                        };
                        let ctx = format!(
                            "jobs={n} workers={workers} total={total} slice={slice} alloc={alloc:?}"
                        );
                        let pooled = run_fleet(jobs(n), config());
                        assert!(
                            pooled.total_rounds <= total,
                            "budget overrun ({} > {total}) at {ctx}",
                            pooled.total_rounds
                        );
                        let billed: u64 = pooled.sources.iter().map(|r| r.elapsed_rounds()).sum();
                        assert_eq!(billed, pooled.total_rounds, "billing must be exact at {ctx}");
                        assert!(
                            pooled.scheduler.rounds_executed <= pooled.scheduler.rounds_granted,
                            "one-round queries can never overshoot their grant at {ctx}"
                        );
                        let baseline = run_fleet_thread_per_job(jobs(n), config());
                        assert_eq!(
                            pooled.sources, baseline.sources,
                            "pooled report diverged from thread-per-job at {ctx}"
                        );
                        assert_eq!(pooled.total_rounds, baseline.total_rounds, "at {ctx}");
                    }
                }
            }
        }
    }
}

/// A panicking slice must take down only its own job: the supervisor
/// rebuilds the victim from its checkpoint while the pool keeps draining
/// the three healthy siblings, whose health stays spotless.
#[test]
fn slice_panic_restarts_only_the_victim_job() {
    for &workers in &worker_counts() {
        let store = scratch_store("victim");
        let mut fleet_jobs: Vec<FleetJob<FaultPlanSource<Arc<WebDbServer>>>> = Vec::new();
        for i in 0..4 {
            let plan = if i == 0 { FaultPlan::new().panic_at(4) } else { FaultPlan::new() };
            let mut builder = CrawlConfig::builder().known_target_size(5);
            if i == 0 {
                builder = builder.checkpoint_store(store.clone()).checkpoint_every(1);
            }
            fleet_jobs.push(FleetJob {
                source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".into())],
                config: builder.build().unwrap(),
                resume: None,
            });
        }
        let config =
            FleetConfig::builder().total_rounds(2_000).slice(8).workers(workers).build().unwrap();
        let report = run_fleet_supervised(fleet_jobs, config);
        assert_eq!(
            report.health[0].worker_restarts, 1,
            "exactly one restart for the victim at workers={workers}"
        );
        assert!(!report.health[0].abandoned);
        for (i, h) in report.health.iter().enumerate().skip(1) {
            assert_eq!(
                (h.worker_restarts, h.breaker_trips, h.abandoned),
                (0, 0, false),
                "healthy job {i} must be untouched by job 0's panic at workers={workers}"
            );
        }
        for (i, r) in report.sources.iter().enumerate() {
            assert_eq!(r.records, 5, "job {i} must finish its harvest at workers={workers}");
        }
    }
}

/// `workers = 1` is the reproducibility anchor: one worker drains the
/// injector strictly in submission order, so two identical runs produce
/// identical reports (per-query traces included) *and* identical slice
/// schedules.
#[test]
fn single_worker_fleet_is_fully_deterministic() {
    let run = || {
        let config = FleetConfig::builder()
            .total_rounds(700)
            .slice(9)
            .allocation(AllocationStrategy::HarvestProportional)
            .workers(1)
            .build()
            .unwrap();
        run_fleet(jobs(5), config)
    };
    let a = run();
    let b = run();
    assert_eq!(a.sources, b.sources, "reports must be bit-for-bit identical");
    assert_eq!(a.scheduler, b.scheduler, "the slice schedule must be identical");
    assert!(a.scheduler.steals == 0, "a single worker has nobody to steal from");
}

/// Builds the fault plan the CI matrix selects via `DWC_FAULT_KIND`,
/// scaled to a figure-1 crawl (~15 requests per attempt).
fn matrix_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "burst" => FaultPlan::new().burst(2 + seed % 5, 6),
        "stall" => FaultPlan::seeded(seed, 40, 0.15, &[FaultKind::Stall { rounds: 2 }]),
        "corrupt" => FaultPlan::seeded(seed, 40, 0.15, &[FaultKind::Corrupt]),
        "panic" => FaultPlan::new().panic_at(3 + seed % 7),
        _ => FaultPlan::seeded(
            seed,
            40,
            0.12,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        ),
    }
}

/// The CI stress cell: a supervised fleet (one faulted job among healthy
/// siblings) must preserve the full harvest at whatever pool width
/// `DWC_WORKERS` pins — supervision semantics cannot depend on how slices
/// interleave across workers.
#[test]
fn fault_matrix_holds_at_every_pool_width() {
    let kind = std::env::var("DWC_FAULT_KIND").unwrap_or_else(|_| "mixed".into());
    let seed: u64 = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    for &workers in &worker_counts() {
        let store = scratch_store("matrix");
        let mut fleet_jobs: Vec<FleetJob<FaultPlanSource<Arc<WebDbServer>>>> = Vec::new();
        for i in 0..3 {
            let plan = if i == 0 { matrix_plan(&kind, seed) } else { FaultPlan::new() };
            let mut builder =
                CrawlConfig::builder().known_target_size(5).max_requeues(10).max_retries(8);
            if i == 0 {
                builder = builder.checkpoint_store(store.clone()).checkpoint_every(1);
            }
            fleet_jobs.push(FleetJob {
                source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".into())],
                config: builder.build().unwrap(),
                resume: None,
            });
        }
        let config = FleetConfig::builder()
            .total_rounds(4_000)
            .slice(8)
            .max_restarts(5)
            .breaker(BreakerConfig { trip_after: 3, cooldown: 2 })
            .workers(workers)
            .build()
            .unwrap();
        let report = run_fleet_supervised(fleet_jobs, config);
        assert!(
            !report.health[0].abandoned,
            "kind {kind} seed {seed} workers {workers}: restart budget exhausted"
        );
        for (i, r) in report.sources.iter().enumerate() {
            assert_eq!(
                r.records, 5,
                "kind {kind} seed {seed} workers {workers}: job {i} lost records"
            );
        }
        if kind == "panic" {
            assert!(report.worker_restarts() >= 1, "panic plan must force a restart");
        }
    }
}
