//! Out-of-core storage parity suite: the paged backend is observationally
//! identical to the resident one, and the state journal loses at most the
//! query in flight.
//!
//! Three invariants:
//!
//! 1. **Backend parity under faults** — a crawl against a
//!    [`SegmentTable`]-backed server (file-backed pages, sized buffer pool)
//!    produces a `CrawlReport` bit-identical to the resident backend's,
//!    across the same `DWC_FAULT_KIND` × `DWC_FAULT_SEED` matrix the crash
//!    and serving-parity suites sweep. Storage is below the query seam;
//!    policies must not be able to tell.
//! 2. **Backend parity on random databases** — the same equality, property
//!    tested over random small tables, page sizes, and result caps.
//! 3. **Journal recovery at every frame** — kill a journaled crawl at every
//!    frame boundary (and mid-frame), recover, resume, and the finished
//!    crawl matches the uninterrupted baseline exactly.

use deep_web_crawler::core::StateJournal;
use deep_web_crawler::model::{AttrId, AttrSpec, Schema, UniversalTable};
use deep_web_crawler::prelude::*;
use deep_web_crawler::store::{FilePager, FrameLog, MemPager, MemoryBudget, SegmentTable};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fresh per-test scratch directory (same idiom as the store's own tests).
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("dwc-paged-storage-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn imdb_table(seed: u64) -> UniversalTable {
    Preset::Imdb.table(0.002, seed)
}

fn interface(table: &UniversalTable) -> InterfaceSpec {
    InterfaceSpec::permissive(table.schema(), 10).with_result_cap(40)
}

/// A paged copy of `table` on real files, with the buffer pool sized from a
/// deliberately small budget so eviction actually happens mid-crawl.
fn paged_server(table: &UniversalTable, dir: &std::path::Path) -> WebDbServer {
    let budget = MemoryBudget::from_mb(2);
    let pager =
        FilePager::open(dir, deep_web_crawler::store::DEFAULT_PAGE_SIZE).expect("open segment dir");
    let seg = SegmentTable::from_table(table, Box::new(pager), budget.pool_bytes())
        .expect("pack segments");
    WebDbServer::paged(Arc::new(seg), interface(table)).with_page_cache(budget.page_cache_entries())
}

/// The fault plan the CI matrix selects via `DWC_FAULT_KIND`, mirroring the
/// crash and serving-parity suites so all three cover the same cells.
fn matrix_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "none" => FaultPlan::new(),
        "burst" => FaultPlan::new().burst(8 + seed % 13, 40),
        "stall" => FaultPlan::seeded(seed, 600, 0.08, &[FaultKind::Stall { rounds: 3 }]),
        "corrupt" => FaultPlan::seeded(seed, 600, 0.10, &[FaultKind::Corrupt]),
        _ => FaultPlan::seeded(
            seed,
            600,
            0.08,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        ),
    }
}

fn fault_matrix_cell() -> (String, u64) {
    let kind = std::env::var("DWC_FAULT_KIND").unwrap_or_else(|_| "mixed".into());
    let seed = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7);
    (kind, seed)
}

fn crawl_config() -> CrawlConfig {
    CrawlConfig::builder()
        .max_rounds(1_500)
        .prober(ProberMode::Wire)
        .max_retries(4)
        .build()
        .expect("valid crawl config")
}

fn run_crawl<S: DataSource>(source: S, config: CrawlConfig) -> CrawlReport {
    let mut crawler = Crawler::new(source, PolicyKind::GreedyLink.build(), config);
    crawler.add_seed("Language", "Language_0");
    crawler.add_seed("Actor", "Actor_0");
    crawler.run()
}

/// The tentpole invariant: swapping the resident backend for file-backed
/// segments changes nothing above the query seam — counters, coverage, and
/// the full per-query trace are bit-identical, fault matrix included.
#[test]
fn paged_backend_reproduces_resident_reports_across_fault_matrix() {
    let (kind, seed) = fault_matrix_cell();
    let table = imdb_table(3);
    let dir = scratch_dir("matrix");

    let resident = run_crawl(
        FaultPlanSource::new(
            WebDbServer::new(table.clone(), interface(&table)),
            matrix_plan(&kind, seed),
        ),
        crawl_config(),
    );
    let paged = run_crawl(
        FaultPlanSource::new(paged_server(&table, &dir), matrix_plan(&kind, seed)),
        crawl_config(),
    );

    assert_eq!(
        paged, resident,
        "fault cell {kind}/{seed}: the paged backend must reproduce the resident report"
    );
    assert!(resident.records > 0, "fault cell {kind}/{seed} harvested nothing");
    std::fs::remove_dir_all(&dir).ok();
}

/// Parity holds through the serving tier too: segments under a bounded
/// queue and worker threads still bill and harvest identically.
#[test]
fn paged_backend_parity_through_the_service() {
    let table = imdb_table(11);
    let dir = scratch_dir("service");

    let resident = {
        let service = SourceService::start(
            Arc::new(WebDbServer::new(table.clone(), interface(&table))),
            ServeConfig::default(),
        );
        let conn = service.connect();
        let report = run_crawl(conn.clone(), crawl_config());
        assert_eq!(report.rounds, conn.rounds_used());
        drop(conn);
        service.shutdown();
        report
    };
    let paged = {
        let service =
            SourceService::start(Arc::new(paged_server(&table, &dir)), ServeConfig::default());
        let conn = service.connect();
        let report = run_crawl(conn.clone(), crawl_config());
        assert_eq!(report.rounds, conn.rounds_used());
        drop(conn);
        service.shutdown();
        report
    };

    assert_eq!(paged, resident);
    std::fs::remove_dir_all(&dir).ok();
}

/// A saved-and-reopened segment table (fresh process image: cold buffer
/// pool, metadata reloaded from disk) still reproduces the resident report.
#[test]
fn reopened_segments_preserve_parity() {
    let table = imdb_table(5);
    let dir = scratch_dir("reopen");
    let budget = MemoryBudget::from_mb(2);

    let resident = run_crawl(WebDbServer::new(table.clone(), interface(&table)), crawl_config());

    {
        let pager = FilePager::open(&dir, deep_web_crawler::store::DEFAULT_PAGE_SIZE)
            .expect("open segment dir");
        let seg = SegmentTable::from_table(&table, Box::new(pager), budget.pool_bytes())
            .expect("pack segments");
        seg.save_meta(&dir).expect("save segment metadata");
    }
    let reopened = SegmentTable::open(&dir, budget.pool_bytes()).expect("reopen segments");
    let paged =
        run_crawl(WebDbServer::paged(Arc::new(reopened), interface(&table)), crawl_config());

    assert_eq!(paged, resident);
    std::fs::remove_dir_all(&dir).ok();
}

/// A random record: 2–5 `(attr, value-index)` fields over 3 attributes with
/// value pools of 12 per attribute (the shared properties-suite shape).
fn record_strategy() -> impl Strategy<Value = Vec<(u16, u8)>> {
    prop::collection::vec((0u16..3, 0u8..12), 2..=5)
}

fn table_from(records: &[Vec<(u16, u8)>]) -> UniversalTable {
    let schema = Schema::new(vec![
        AttrSpec::queriable("A"),
        AttrSpec::queriable("B"),
        AttrSpec::queriable("C"),
    ]);
    let mut t = UniversalTable::new(schema);
    for rec in records {
        let fields: Vec<(AttrId, String)> =
            rec.iter().map(|&(a, v)| (AttrId(a), format!("v{v}"))).collect();
        t.push_record_strs(fields.iter().map(|(a, s)| (*a, s.as_str())));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backend parity as a property: for any random table, page size, and
    /// result cap, the resident and paged crawls produce identical reports.
    #[test]
    fn paged_crawls_match_resident_on_random_tables(
        records in prop::collection::vec(record_strategy(), 1..40),
        page_size in 1usize..7,
        cap in prop::option::of(1usize..30),
    ) {
        let t = table_from(&records);
        let mut spec = InterfaceSpec::permissive(t.schema(), page_size);
        if let Some(c) = cap {
            spec = spec.with_result_cap(c);
        }
        let config = CrawlConfig::builder()
            .max_rounds(400)
            .prober(ProberMode::Wire)
            .build()
            .expect("valid crawl config");
        let run = |server: WebDbServer| {
            let mut crawler = Crawler::new(server, PolicyKind::GreedyLink.build(), config.clone());
            crawler.add_seed("A", "v0");
            crawler.run()
        };

        let resident = run(WebDbServer::new(t.clone(), spec.clone()));
        // In-RAM pager here: the property sweeps many tables, and the
        // file-backed pager is exercised by the matrix tests above.
        let seg = SegmentTable::from_table(&t, Box::new(MemPager::new(256)), 4096)
            .expect("pack segments");
        let paged = run(WebDbServer::paged(Arc::new(seg), spec));

        prop_assert_eq!(paged, resident);
    }
}

/// Journal crash-recovery sweep: run a journaled crawl to completion, then
/// simulate a kill at **every frame boundary** (and mid-frame, to model a
/// torn write). Each recovery must yield a checkpoint the crawler resumes
/// from to the exact baseline outcome — the journal never loses more than
/// the query that was in flight, and a torn tail is discarded, not trusted.
#[test]
fn journal_recovers_at_every_kill_point() {
    let table = imdb_table(3);
    let dir = scratch_dir("journal");
    let journal_path = dir.join("crawl.journal");

    let config = CrawlConfig::builder()
        .max_rounds(300)
        .journal_path(&journal_path)
        .build()
        .expect("valid crawl config");
    let server = WebDbServer::new(table.clone(), interface(&table));
    let baseline = run_crawl(&server, config);
    assert!(baseline.records > 0);

    let replay = FrameLog::replay(&journal_path).expect("replay journal");
    assert!(!replay.torn, "a cleanly finished crawl leaves no torn tail");
    assert!(replay.frames.len() > 1, "expected a base frame plus deltas");
    let bytes = std::fs::read(&journal_path).expect("read journal");
    assert_eq!(replay.valid_len, bytes.len() as u64);

    // Frame boundaries: each frame is [u32 len][u64 checksum][payload].
    let mut boundaries = vec![0u64];
    for frame in &replay.frames {
        boundaries.push(boundaries.last().unwrap() + 12 + frame.len() as u64);
    }

    let resume_config = CrawlConfig::builder().max_rounds(300).build().expect("valid config");
    let cut_path = dir.join("cut.journal");
    let mut prev_records = 0usize;
    for (i, &cut) in boundaries.iter().enumerate() {
        // The kill point: everything after `cut` never reached disk. Also
        // probe a torn half-frame 5 bytes past the boundary.
        for extra in [0u64, 5] {
            let end = (cut + extra).min(bytes.len() as u64) as usize;
            std::fs::write(&cut_path, &bytes[..end]).expect("write cut journal");
            let recovered = StateJournal::recover(&cut_path).expect("recover");
            if i == 0 {
                assert!(recovered.is_none(), "no base frame survives an empty cut");
                continue;
            }
            let rec = recovered.expect("base frame present");
            assert_eq!(rec.deltas_applied, (i - 1) as u64, "cut after frame {i}");
            if extra > 0 && end < bytes.len() {
                assert!(rec.torn, "a half-frame tail must be flagged torn");
            }
            // Resume from the recovered state and finish the crawl: the
            // outcome must match the uninterrupted baseline exactly.
            let fresh = WebDbServer::new(table.clone(), interface(&table));
            let crawler = Crawler::resume(
                &fresh,
                PolicyKind::GreedyLink.build(),
                &rec.checkpoint,
                resume_config.clone(),
            );
            let resumed = crawler.run();
            assert_eq!(
                resumed.records, baseline.records,
                "kill after frame {i} (+{extra}B) lost records"
            );
            assert_eq!(resumed.rounds, baseline.rounds, "kill after frame {i} changed billing");
            if extra == 0 {
                // More journal survived ⇒ at least as much state recovered.
                assert!(rec.checkpoint.records.len() >= prev_records);
                prev_records = rec.checkpoint.records.len();
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
