//! Concurrency stress tests: many crawlers hammering one shared
//! `Arc<WebDbServer>` must agree with the server's own global round counter
//! (Definition 2.3 bills the *source*, whichever worker asks), and fault
//! injection under concurrency must cost rounds without losing records.

use deep_web_crawler::core::fleet::{run_fleet, FleetConfig, FleetJob};
use deep_web_crawler::prelude::*;
use std::sync::Arc;
use std::thread;

fn shared_server(scale: f64, seed: u64) -> Arc<WebDbServer> {
    let table = Preset::Imdb.table(scale, seed);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    Arc::new(WebDbServer::new(table, spec))
}

/// Four-plus threads, one server: every page request any thread makes lands
/// in the same atomic counter, so the per-thread `rounds()` totals must sum
/// exactly to the server's `rounds_used()`.
#[test]
fn threads_sharing_a_server_sum_to_its_global_counter() {
    let server = shared_server(0.01, 3);
    assert_eq!(server.rounds_used(), 0);
    let threads = 6;
    let per_thread_budget = 40u64;
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let config = CrawlConfig::builder()
                    .max_rounds(per_thread_budget)
                    .build()
                    .expect("valid crawl config");
                let mut crawler =
                    Crawler::new(server, PolicyKind::Random(i as u64).build(), config);
                crawler.add_seed("Language", &format!("Language_{i}"));
                crawler.add_seed("Actor", &format!("Actor_{}", i * 13));
                crawler.run().rounds
            })
        })
        .collect();
    let per_thread: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let summed: u64 = per_thread.iter().sum();
    assert!(per_thread.iter().all(|&r| r > 0), "every thread crawled: {per_thread:?}");
    assert_eq!(
        summed,
        server.rounds_used(),
        "per-thread rounds {per_thread:?} must sum to the server's global counter"
    );
}

/// The same invariant holds when the shared server injects transient faults:
/// failed requests are billed rounds (Def. 2.3) and counted by both sides.
#[test]
fn concurrent_crawls_bill_failed_rounds_consistently() {
    let table = Preset::Imdb.table(0.005, 9);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let server = Arc::new(WebDbServer::new(table, spec).with_faults(FaultPolicy::every(5)));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let config = CrawlConfig::builder()
                    .max_rounds(60)
                    .max_retries(16)
                    .build()
                    .expect("valid crawl config");
                let mut crawler = Crawler::new(server, PolicyKind::GreedyLink.build(), config);
                crawler.add_seed("Language", &format!("Language_{i}"));
                let report = crawler.run();
                (report.rounds, report.transient_failures)
            })
        })
        .collect();
    let results: Vec<(u64, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let summed_rounds: u64 = results.iter().map(|&(r, _)| r).sum();
    let summed_failures: u64 = results.iter().map(|&(_, f)| f).sum();
    assert_eq!(summed_rounds, server.rounds_used());
    assert!(summed_failures > 0, "the every-5 schedule must fire under concurrency");
    assert_eq!(
        summed_failures,
        server.faults_injected(),
        "every injected fault surfaced as exactly one crawler-side transient failure"
    );
}

/// The ISSUE acceptance scenario end to end: two fleet jobs share one faulty
/// source, retries are billed as rounds, and no records are lost.
#[test]
fn fleet_jobs_share_a_faulty_source_without_losing_records() {
    let table = Preset::Imdb.table(0.005, 21);
    let n = table.num_records();
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let shared = Arc::new(WebDbServer::new(table, spec).with_faults(FaultPolicy::every(7)));
    let jobs: Vec<FleetJob<Arc<WebDbServer>>> = (0..2)
        .map(|i| FleetJob {
            source: Arc::clone(&shared),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("Language".into(), format!("Language_{i}"))],
            config: CrawlConfig::builder()
                .known_target_size(n)
                .max_retries(32)
                .build()
                .expect("valid crawl config"),
            resume: None,
            tenant: None,
        })
        .collect();
    let config =
        FleetConfig::builder().total_rounds(6_000).slice(50).build().expect("valid fleet config");
    let report = run_fleet(jobs, config);

    let clean = {
        let table = Preset::Imdb.table(0.005, 21);
        let spec = InterfaceSpec::permissive(table.schema(), 10);
        let server = WebDbServer::new(table, spec);
        let mut records = Vec::new();
        for i in 0..2 {
            let config =
                CrawlConfig::builder().known_target_size(n).build().expect("valid crawl config");
            let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
            crawler.add_seed("Language", &format!("Language_{i}"));
            records.push(crawler.run().records);
        }
        records
    };
    for (i, r) in report.sources.iter().enumerate() {
        assert_eq!(
            r.records, clean[i],
            "job {i} under faults must harvest what a fault-free run harvests"
        );
    }
    let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
    assert_eq!(summed, shared.rounds_used(), "shared billing stays exact under faults");
    let failures: u64 = report.sources.iter().map(|r| r.transient_failures).sum();
    assert!(failures > 0, "the every-7 fault schedule must have fired");
}
