//! Fault-injection acceptance suite: the ISSUE's crash-safety scenarios run
//! end to end through the public façade.
//!
//! * **Kill and recover** — a fleet job killed mid-crawl by a scheduled
//!   panic is restarted from its last persisted checkpoint and finishes
//!   with the same record count as an uninterrupted baseline, at a total
//!   cost within one checkpoint interval of the baseline.
//! * **Circuit breaker** — a job hit by a long fault burst trips its
//!   per-source breaker, is paused, probed half-open, recovers, and still
//!   loses zero records.
//! * **Fault matrix** — the same no-loss invariant under each fault kind,
//!   parameterized by `DWC_FAULT_KIND` (`burst`|`stall`|`corrupt`|`panic`|
//!   `mixed`) and `DWC_FAULT_SEED` so CI can sweep a seeds × kinds matrix
//!   with a single test binary.

use deep_web_crawler::core::fleet::{run_fleet_supervised, FleetConfig, FleetJob};
use deep_web_crawler::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A small IMDB-flavoured source: big enough that crawls span many queries
/// (so checkpoints and slices interleave with faults), capped so one query
/// costs a bounded number of pages.
fn imdb_server(seed: u64) -> Arc<WebDbServer> {
    let table = Preset::Imdb.table(0.002, seed);
    let spec = InterfaceSpec::permissive(table.schema(), 10).with_result_cap(40);
    Arc::new(WebDbServer::new(table, spec))
}

fn scratch_store(name: &str) -> CheckpointStore {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dwc-faultinj-{}-{}-{name}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    CheckpointStore::new(dir.join("job.ckpt"))
}

/// One supervised job over a faulty view of an IMDB source.
fn job(
    data_seed: u64,
    plan: FaultPlan,
    store: Option<CheckpointStore>,
) -> FleetJob<FaultPlanSource<Arc<WebDbServer>>> {
    let mut builder = CrawlConfig::builder().max_requeues(20);
    if let Some(store) = store {
        builder = builder.checkpoint_store(store).checkpoint_every(1);
    }
    FleetJob {
        source: FaultPlanSource::new(imdb_server(data_seed), plan),
        policy: PolicyKind::GreedyLink,
        seeds: vec![("Language".into(), "Language_0".into())],
        config: builder.build().unwrap(),
        resume: None,
        tenant: None,
    }
}

fn fleet_config() -> FleetConfig {
    let mut builder = FleetConfig::builder()
        .total_rounds(20_000)
        .slice(8)
        .default_retry(RetryPolicy::retries(4))
        .max_restarts(5)
        .breaker(BreakerConfig { trip_after: 3, cooldown: 2 });
    // CI's scheduler stress sweeps pool widths over the same fault matrix;
    // every invariant here must hold at any worker count.
    if let Some(w) = std::env::var("DWC_WORKERS").ok().and_then(|s| s.parse().ok()) {
        builder = builder.workers(w);
    }
    builder.build().unwrap()
}

/// The fault-free reference run every scenario is measured against.
fn baseline(data_seed: u64) -> deep_web_crawler::core::fleet::FleetReport {
    run_fleet_supervised(vec![job(data_seed, FaultPlan::new(), None)], fleet_config())
}

/// Kill-and-recover: with a checkpoint after every query, a worker killed by
/// a mid-crawl panic restarts from disk and redoes at most the one query
/// that was in flight — so the harvested set matches the uninterrupted
/// baseline and the cost overshoot is bounded by one checkpoint interval.
#[test]
fn killed_worker_recovers_from_checkpoint_and_matches_baseline() {
    let clean = baseline(11);
    assert_eq!(clean.worker_restarts(), 0);
    let store = scratch_store("kill-recover");
    let faulted = run_fleet_supervised(
        vec![job(11, FaultPlan::new().panic_at(25), Some(store.clone()))],
        fleet_config(),
    );
    assert_eq!(faulted.worker_restarts(), 1, "the scheduled panic kills exactly one worker");
    assert!(!faulted.health[0].abandoned);
    assert!(store.exists(), "periodic checkpoints persisted");
    assert_eq!(
        faulted.sources[0].records, clean.sources[0].records,
        "recovery must not lose or duplicate records"
    );
    assert_eq!(faulted.sources[0].stop, clean.sources[0].stop);
    // One checkpoint interval is one query here; with the result cap at 40
    // and pages of 10, redoing the in-flight query costs at most 4 requests
    // plus that query's retry backoff. 16 elapsed rounds is a safe envelope.
    let slack = 16;
    assert!(
        faulted.total_rounds <= clean.total_rounds + slack,
        "recovery redid more than one checkpoint interval: {} vs baseline {}",
        faulted.total_rounds,
        clean.total_rounds
    );
}

/// Breaker acceptance: a long transient burst trips the per-source breaker
/// (pausing the job) and the half-open probe later recovers it; requeues
/// put every failed value back on the frontier, so nothing is lost.
#[test]
fn breaker_trips_on_burst_recovers_and_loses_nothing() {
    let clean = baseline(13);
    let report =
        run_fleet_supervised(vec![job(13, FaultPlan::new().burst(10, 60), None)], fleet_config());
    assert!(report.breaker_trips() >= 1, "the 60-request burst must trip the breaker");
    assert!(report.breaker_recoveries() >= 1, "the probe must eventually find the source healthy");
    assert!(!report.health[0].abandoned);
    assert_eq!(
        report.sources[0].records, clean.sources[0].records,
        "breaker pauses and requeues must not lose records"
    );
    assert!(report.sources[0].transient_failures > 0);
    let rendered = report.to_string();
    assert!(rendered.contains("trips"), "FleetReport::Display surfaces breaker activity");
}

/// Builds the fault plan the CI matrix selects via `DWC_FAULT_KIND`; the
/// schedule is offset by `DWC_FAULT_SEED` so different matrix cells hit
/// different crawl phases.
fn matrix_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "burst" => FaultPlan::new().burst(8 + seed % 13, 40),
        "stall" => FaultPlan::seeded(seed, 600, 0.08, &[FaultKind::Stall { rounds: 3 }]),
        "corrupt" => FaultPlan::seeded(seed, 600, 0.10, &[FaultKind::Corrupt]),
        "panic" => FaultPlan::new().panic_at(9 + seed % 17).panic_at(60 + seed % 29),
        _ => FaultPlan::seeded(
            seed,
            600,
            0.08,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        ),
    }
}

/// The matrix invariant: whatever the fault kind and seed, a supervised
/// fleet with periodic checkpoints harvests exactly the fault-free record
/// set, and the per-kind side effects show up in the report.
#[test]
fn fault_matrix_preserves_the_harvest() {
    let kind = std::env::var("DWC_FAULT_KIND").unwrap_or_else(|_| "mixed".into());
    let seed: u64 = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let clean = baseline(17);
    let store = scratch_store("matrix");
    let report = run_fleet_supervised(
        vec![job(17, matrix_plan(&kind, seed), Some(store.clone()))],
        fleet_config(),
    );
    assert!(!report.health[0].abandoned, "kind {kind} seed {seed} exhausted its restart budget");
    assert_eq!(
        report.sources[0].records, clean.sources[0].records,
        "kind {kind} seed {seed} lost records"
    );
    assert!(store.exists());
    let r = &report.sources[0];
    match kind.as_str() {
        "stall" => assert!(r.stall_rounds > 0, "stall plan must bill stall rounds"),
        "corrupt" => assert!(r.corrupt_pages > 0, "corrupt plan must surface corrupt pages"),
        "panic" => assert!(report.worker_restarts() >= 1, "panic plan must force a restart"),
        "burst" => assert!(r.transient_failures > 0),
        _ => assert!(r.transient_failures > 0, "mixed plan must inject something"),
    }
    assert!(
        report.total_rounds >= clean.total_rounds,
        "faults can only make the crawl more expensive"
    );
}
