//! Cross-crate integration tests: full crawls over generated sources,
//! exercising datagen → server → crawler → policies together.

use deep_web_crawler::core::crawler::StopReason;
use deep_web_crawler::model::components::Connectivity;
use deep_web_crawler::prelude::*;
use std::sync::Arc;

fn crawl(
    table: &UniversalTable,
    interface: InterfaceSpec,
    kind: &PolicyKind,
    seeds: &[(&str, &str)],
    config: CrawlConfig,
) -> CrawlReport {
    let server = WebDbServer::new(table.clone(), interface);
    let mut crawler = Crawler::new(&server, kind.build(), config);
    for (a, v) in seeds {
        crawler.add_seed(a, v);
    }
    crawler.run()
}

/// With an unlimited budget, every policy harvests exactly the records
/// reachable from the seeds — the coverage convergence is policy-independent
/// (Section 1: "the ultimate database coverage is predetermined by the seed
/// values and the target query interfaces").
#[test]
fn coverage_convergence_is_policy_independent() {
    let table = Preset::Ebay.table(0.01, 5);
    let n = table.num_records();
    let seeds = [("Categories", "Categories_0")];
    let mut reached = Vec::new();
    for kind in [
        PolicyKind::Bfs,
        PolicyKind::Dfs,
        PolicyKind::Random(3),
        PolicyKind::GreedyLink,
        PolicyKind::Mmmi(MmmiConfig::default()),
    ] {
        let config = CrawlConfig::builder().known_target_size(n).build().unwrap();
        let report =
            crawl(&table, InterfaceSpec::permissive(table.schema(), 10), &kind, &seeds, config);
        assert_eq!(report.stop, StopReason::FrontierExhausted, "{}", kind.label());
        reached.push(report.records);
    }
    assert!(
        reached.windows(2).all(|w| w[0] == w[1]),
        "all policies reach the same set: {reached:?}"
    );
}

/// The crawl's final record count equals the reachability predicted by the
/// connectivity analysis on the value-union structure.
#[test]
fn crawl_matches_connectivity_analysis() {
    let table = Preset::Acm.table(0.005, 9);
    let n = table.num_records();
    let seed_attr = table.schema().attr_by_name("Author").unwrap();
    let seed_value = table.interner().ids_of_attr(seed_attr)[0];
    let seed_str = table.interner().value_str(seed_value).to_owned();

    let mut conn = Connectivity::analyze(&table);
    let predicted = conn.reachable_coverage(&[seed_value]);

    let config = CrawlConfig::builder().known_target_size(n).build().unwrap();
    let report = crawl(
        &table,
        InterfaceSpec::permissive(table.schema(), 10),
        &PolicyKind::Bfs,
        &[("Author", &seed_str)],
        config,
    );
    let crawled = report.records as f64 / n as f64;
    assert!(
        (crawled - predicted).abs() < 1e-9,
        "connectivity predicts {predicted}, crawl reached {crawled}"
    );
}

/// Wire mode (serialize every page to XML, re-extract) produces exactly the
/// same crawl as the in-process fast path.
#[test]
fn wire_and_in_process_probers_agree() {
    let table = Preset::Ebay.table(0.005, 2);
    let n = table.num_records();
    let run = |prober| {
        let config = CrawlConfig::builder().known_target_size(n).prober(prober).build().unwrap();
        let report = crawl(
            &table,
            InterfaceSpec::permissive(table.schema(), 10),
            &PolicyKind::GreedyLink,
            &[("Categories", "Categories_0"), ("Seller", "Seller_1")],
            config,
        );
        (report.records, report.rounds, report.queries)
    };
    assert_eq!(run(ProberMode::InProcess), run(ProberMode::Wire));
}

/// Transient faults with retries leave the harvested database identical;
/// only the round count grows.
#[test]
fn faults_change_cost_not_content() {
    let table = Preset::Ebay.table(0.005, 2);
    let n = table.num_records();
    let run = |faults: Option<FaultPolicy>| {
        let mut server =
            WebDbServer::new(table.clone(), InterfaceSpec::permissive(table.schema(), 10));
        if let Some(f) = faults {
            server = server.with_faults(f);
        }
        let config = CrawlConfig::builder().known_target_size(n).max_retries(4).build().unwrap();
        let mut crawler = Crawler::new(&server, PolicyKind::Bfs.build(), config);
        crawler.add_seed("Categories", "Categories_0");
        crawler.run()
    };
    let clean = run(None);
    let faulty = run(Some(FaultPolicy::every(5)));
    assert_eq!(clean.records, faulty.records, "faults must not lose records");
    assert_eq!(clean.queries, faulty.queries);
    assert!(faulty.rounds > clean.rounds, "retries cost extra rounds");
    assert!(faulty.transient_failures > 0);
}

/// The abortion heuristics may only reduce communication rounds, never
/// reduce final coverage below the target.
#[test]
fn abortion_saves_rounds_without_losing_target_coverage() {
    let table = Preset::Ebay.table(0.02, 7);
    let n = table.num_records();
    let run = |abort: AbortPolicy| {
        let config = CrawlConfig::builder()
            .known_target_size(n)
            .target_coverage(0.9)
            .abort(abort)
            .build()
            .unwrap();
        crawl(
            &table,
            InterfaceSpec::permissive(table.schema(), 10),
            &PolicyKind::GreedyLink,
            &[("Categories", "Categories_0"), ("Seller", "Seller_1")],
            config,
        )
    };
    let plain = run(AbortPolicy::never());
    let aborted = run(AbortPolicy::standard());
    assert!(plain.final_coverage.unwrap() >= 0.9);
    assert!(aborted.final_coverage.unwrap() >= 0.9);
    assert!(
        aborted.rounds <= plain.rounds,
        "abortion must not cost extra rounds ({} vs {})",
        aborted.rounds,
        plain.rounds
    );
    assert!(aborted.aborted_queries > 0, "the heuristic must actually fire");
}

/// A domain table from a same-domain sample lets the DM policy crawl records
/// the seeds cannot reach (the "data islands" argument of §4, Limitation 2).
#[test]
fn domain_policy_escapes_data_islands() {
    use deep_web_crawler::model::{AttrSpec, Schema};
    // Target: two disconnected blocks. Seeds only reach block 1.
    let schema = Schema::new(vec![AttrSpec::queriable("A"), AttrSpec::queriable("B")]);
    let mut target = UniversalTable::new(schema.clone());
    use deep_web_crawler::model::AttrId;
    for i in 0..10 {
        target.push_record_strs([(AttrId(0), "block1"), (AttrId(1), &format!("x{i}") as &str)]);
    }
    for i in 0..10 {
        target.push_record_strs([(AttrId(0), "block2"), (AttrId(1), &format!("y{i}") as &str)]);
    }
    // Sample: contains both block anchors.
    let mut sample = UniversalTable::new(schema);
    sample.push_record_strs([(AttrId(0), "block1"), (AttrId(1), "z1")]);
    sample.push_record_strs([(AttrId(0), "block2"), (AttrId(1), "z2")]);
    let dm = Arc::new(DomainTable::build(sample));

    let n = target.num_records();
    let config = CrawlConfig::builder().known_target_size(n).build().unwrap();
    // GL from a block-1 seed gets stuck at 50%.
    let gl = crawl(
        &target,
        InterfaceSpec::permissive(target.schema(), 10),
        &PolicyKind::GreedyLink,
        &[("A", "block1")],
        config.clone(),
    );
    assert_eq!(gl.records, 10, "GL cannot cross to the island");
    // DM probes the table value "block2" and finds the island.
    let dm_report = crawl(
        &target,
        InterfaceSpec::permissive(target.schema(), 10),
        &PolicyKind::Domain(dm),
        &[("A", "block1")],
        config,
    );
    assert_eq!(dm_report.records, 20, "DM reaches both blocks");
}

/// Result caps reduce what a single query can retrieve but pagination still
/// never duplicates or loses records within the accessible window.
#[test]
fn result_caps_limit_but_do_not_corrupt() {
    let table = Preset::Ebay.table(0.005, 2);
    let n = table.num_records();
    let run = |cap: usize| {
        let config = CrawlConfig::builder().known_target_size(n).build().unwrap();
        crawl(
            &table,
            InterfaceSpec::permissive(table.schema(), 10).with_result_cap(cap),
            &PolicyKind::GreedyLink,
            &[("Categories", "Categories_0")],
            config,
        )
    };
    let tight = run(10);
    let loose = run(10_000);
    assert!(tight.records <= loose.records);
    assert!(tight.records > 0);
}
