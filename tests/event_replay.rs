//! Event-stream replay acceptance: a crawl's report IS a fold over its
//! event stream.
//!
//! Every test attaches a sink to a crawl, runs it, and checks that
//! `replay_report` over the recorded stream reproduces the exact
//! `CrawlReport` the crawl returned — under clean runs, under every
//! non-lethal kind of the `DWC_FAULT_KIND` matrix, across the JSONL
//! serialization round trip (`dwc crawl --events` fidelity), through the
//! checkpoint/resume path (late-attached sinks get a snapshot event), and
//! property-tested across seeded fault plans.

use deep_web_crawler::core::metrics::replay_report;
use deep_web_crawler::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The fault-matrix source: big enough that crawls span many queries, so
/// faults interleave with pagination, retries, and requeues.
fn imdb_server(seed: u64) -> Arc<WebDbServer> {
    let table = Preset::Imdb.table(0.002, seed);
    let spec = InterfaceSpec::permissive(table.schema(), 10).with_result_cap(40);
    Arc::new(WebDbServer::new(table, spec))
}

/// Runs one crawl over a fault-plan-wrapped source with a sink attached
/// before the first event, returning the report and the recorded stream.
fn run_with_sink(plan: FaultPlan, data_seed: u64) -> (CrawlReport, Vec<CrawlEvent>) {
    let source = FaultPlanSource::new(imdb_server(data_seed), plan);
    let config = CrawlConfig::builder().max_requeues(20).max_retries(4).build().unwrap();
    let mut crawler = Crawler::new(source, PolicyKind::GreedyLink.build(), config);
    assert!(crawler.add_seed("Language", "Language_0"));
    let sink = MemorySink::new();
    crawler.add_sink(Box::new(sink.clone()));
    let report = crawler.run();
    (report, sink.collected())
}

/// The non-lethal cells of the fault matrix (a `panic` plan kills the
/// crawling thread itself; its parity story is the resume-path test below).
fn matrix_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "burst" => FaultPlan::new().burst(8 + seed % 13, 40),
        "stall" => FaultPlan::seeded(seed, 600, 0.08, &[FaultKind::Stall { rounds: 3 }]),
        "corrupt" => FaultPlan::seeded(seed, 600, 0.10, &[FaultKind::Corrupt]),
        _ => FaultPlan::seeded(
            seed,
            600,
            0.08,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        ),
    }
}

/// Replay parity across the fault matrix. `DWC_FAULT_KIND`/`DWC_FAULT_SEED`
/// narrow the sweep to one CI matrix cell; unset, every kind runs.
#[test]
fn replay_matches_report_across_the_fault_matrix() {
    let seed: u64 = std::env::var("DWC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let kinds: Vec<String> = match std::env::var("DWC_FAULT_KIND") {
        // The panic cell exercises the resume path; here it degrades to the
        // mixed plan so every matrix cell still checks stream parity.
        Ok(kind) if kind != "panic" => vec![kind],
        _ => ["burst", "stall", "corrupt", "mixed"].iter().map(|s| s.to_string()).collect(),
    };
    for kind in kinds {
        let (report, events) = run_with_sink(matrix_plan(&kind, seed), 17);
        assert!(
            matches!(events.last(), Some(CrawlEvent::CrawlFinished { .. })),
            "kind {kind}: the stream must end with the verdict"
        );
        assert_eq!(
            replay_report(&events),
            Some(report),
            "kind {kind} seed {seed}: replayed report diverged"
        );
    }
}

/// JSONL fidelity: the exact byte format `dwc crawl --events` writes — one
/// `to_json` line per event — parses back into a stream that replays to the
/// same report.
#[test]
fn jsonl_round_trip_replays_to_the_same_report() {
    let (report, events) = run_with_sink(matrix_plan("mixed", 3), 17);
    let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let parsed: Vec<CrawlEvent> = jsonl
        .lines()
        .map(|line| {
            CrawlEvent::from_json(line).unwrap_or_else(|| panic!("unparseable line {line:?}"))
        })
        .collect();
    assert_eq!(parsed, events, "serialization must be lossless");
    assert_eq!(replay_report(&parsed), Some(report));
}

/// Resume-path parity: a sink attached to a *resumed* crawler first receives
/// a snapshot event carrying the checkpointed totals, so its stream still
/// replays to the exact final report.
#[test]
fn late_attached_sink_on_a_resumed_crawl_replays_exactly() {
    let server = imdb_server(17);
    let config = CrawlConfig::builder().build().unwrap();
    let mut first = Crawler::new(Arc::clone(&server), PolicyKind::GreedyLink.build(), config);
    assert!(first.add_seed("Language", "Language_0"));
    for _ in 0..5 {
        first.step().unwrap();
    }
    let text = first.checkpoint().to_text();
    drop(first);

    let cp = Checkpoint::from_text(&text).unwrap();
    let config = CrawlConfig::builder().build().unwrap();
    let mut resumed = Crawler::resume(server, PolicyKind::GreedyLink.build(), &cp, config);
    let sink = MemorySink::new();
    resumed.add_sink(Box::new(sink.clone()));
    let report = resumed.run();
    let events = sink.collected();
    assert!(
        matches!(events.first(), Some(CrawlEvent::CrawlResumed { .. })),
        "a late sink must be seeded with the snapshot event"
    );
    assert_eq!(replay_report(&events), Some(report));
}

/// Cache-hit parity: two wire-mode crawls sharing one server overlap on the
/// render cache; the second crawl's `PageCacheHit` events must fold into the
/// report's `page_cache_hits` exactly, and its stream must still replay.
#[test]
fn page_cache_hits_survive_replay() {
    let server = imdb_server(17);
    let run = |server: &Arc<WebDbServer>| {
        let config =
            CrawlConfig::builder().prober(ProberMode::Wire).max_rounds(200).build().unwrap();
        let mut crawler = Crawler::new(Arc::clone(server), PolicyKind::GreedyLink.build(), config);
        assert!(crawler.add_seed("Language", "Language_0"));
        let sink = MemorySink::new();
        crawler.add_sink(Box::new(sink.clone()));
        (crawler.run(), sink.collected())
    };
    let (first_report, first_events) = run(&server);
    assert_eq!(first_report.page_cache_hits, 0, "a cold cache renders every page");
    assert_eq!(replay_report(&first_events), Some(first_report));

    // The second "fleet worker" re-issues the same greedy query sequence and
    // rides the first worker's rendered pages.
    let (report, events) = run(&server);
    assert!(report.page_cache_hits > 0, "overlapping crawls must hit the cache");
    assert_eq!(report.page_cache_hits, server.page_cache().hits());
    let hit_events = events.iter().filter(|e| matches!(e, CrawlEvent::PageCacheHit)).count() as u64;
    assert_eq!(report.page_cache_hits, hit_events, "report is a fold over the stream");
    assert_eq!(replay_report(&events), Some(report));
}

proptest! {
    // Whole crawls per case are expensive; a dozen seeded fault plans cover
    // plenty of interleavings of faults, retries, stalls, and requeues.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seeded fault plan, the recorded stream replays to the exact
    /// report the crawl returned.
    #[test]
    fn replay_parity_holds_for_seeded_fault_plans(
        seed in 0u64..1000,
        fault_prob in 0.0f64..0.12,
    ) {
        let plan = FaultPlan::seeded(
            seed,
            500,
            fault_prob,
            &[FaultKind::Transient, FaultKind::Stall { rounds: 2 }, FaultKind::Corrupt],
        );
        let (report, events) = run_with_sink(plan, 7);
        prop_assert_eq!(replay_report(&events), Some(report));
    }
}
